// Deterministic, seedable fault-point registry for resilience testing.
//
// Production code marks recoverable failure sites with
//
//     OLAPIDX_FAULT_POINT("pool.enqueue");
//
// inside a Status- or StatusOr-returning function. Tests arm a point —
// fail the nth hit, every hit, or a seeded pseudo-random subset — and the
// site returns the injected Status instead of proceeding, proving that the
// error propagates to the public entry point as a Status rather than an
// abort. Randomized plans use SplitMix64, so a (probability, seed) pair
// reproduces the exact same firing pattern on every run.
//
// The registry compiles out when OLAPIDX_FAULT_INJECTION is not defined
// (CMake option of the same name, ON by default for development and CI,
// OFF for release deployments): the macro expands to nothing and the
// library carries zero overhead.
//
// Fault-point catalog (kept in sync with DESIGN.md):
//   pool.enqueue        ThreadPool::TryParallelFor, before dispatch
//   pool.chunk          per chunk, before the chunk body runs
//   serialize.design.parse     ParseDesign entry
//   serialize.sizes.parse      ParseViewSizes entry
//   serialize.checkpoint.parse ParseCheckpoint entry
//   csv.load            LoadCsvFacts entry
//   engine.materialize  MaterializePhysicalDesign entry
//   executor.execute    Executor::TryExecute entry
//   journal.write       AtomicWriteFile, before the temp file is created
//   journal.read        ReadFileToString entry
//   service.sketch.insert   FrequencySketch::TryRecord entry
//   service.whatif.run      AdvisorService what-if attempt (inside retry)
//   service.worker.spawn    AdvisorService, before spawning a re-selection
//                           worker thread
//   service.swap            AdvisorService, before publishing a new epoch
//                           snapshot

#ifndef OLAPIDX_COMMON_FAULT_INJECTION_H_
#define OLAPIDX_COMMON_FAULT_INJECTION_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/status.h"

namespace olapidx {

class FaultInjector {
 public:
  // Process-wide registry (fault points are compile-time constants spread
  // across translation units; tests arm and Reset() around each case).
  static FaultInjector& Global();

  // Fail exactly the nth hit (1-based) of `point` from now on; earlier and
  // later hits pass.
  void ArmNth(const std::string& point, uint64_t nth,
              StatusCode code = StatusCode::kUnavailable);

  // Fail every hit of `point`.
  void ArmAlways(const std::string& point,
                 StatusCode code = StatusCode::kUnavailable);

  // Fail each hit independently with `probability`, driven by a SplitMix64
  // stream seeded with `seed` — bit-reproducible across runs and machines.
  void ArmRandom(const std::string& point, double probability, uint64_t seed,
                 StatusCode code = StatusCode::kUnavailable);

  void Disarm(const std::string& point);

  // Disarms every point and zeroes all hit counters.
  void Reset();

  // Hits observed at `point` since the last Reset() (counted whether or
  // not a plan is armed — useful for discovering which sites a scenario
  // crosses).
  uint64_t HitCount(const std::string& point) const;

  // Called by OLAPIDX_FAULT_POINT. Thread-safe. Returns OK unless the
  // armed plan decides this hit fails.
  Status Check(const char* point);

 private:
  struct PointState {
    uint64_t hits = 0;
    enum class Mode { kDisarmed, kNth, kAlways, kRandom } mode =
        Mode::kDisarmed;
    uint64_t nth = 0;          // kNth: 1-based hit to fail, relative to arm
    uint64_t armed_at_hit = 0; // hits recorded when the plan was armed
    double probability = 0.0;  // kRandom
    uint64_t rng_state = 0;    // kRandom: SplitMix64 state
    StatusCode code = StatusCode::kUnavailable;
  };

  FaultInjector() = default;

  mutable std::mutex mu_;
  std::map<std::string, PointState> points_;
};

}  // namespace olapidx

#if defined(OLAPIDX_FAULT_INJECTION)
#define OLAPIDX_FAULT_POINT(point)                                   \
  do {                                                               \
    ::olapidx::Status _olapidx_fault =                               \
        ::olapidx::FaultInjector::Global().Check(point);             \
    if (!_olapidx_fault.ok()) return _olapidx_fault;                 \
  } while (false)
#else
#define OLAPIDX_FAULT_POINT(point) \
  do {                             \
  } while (false)
#endif

#endif  // OLAPIDX_COMMON_FAULT_INJECTION_H_
