#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "common/fault_injection.h"
#include "common/metrics.h"

namespace olapidx {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  job_status_.resize(num_threads);
  workers_.reserve(num_threads - 1);
  for (size_t w = 1; w < num_threads; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::pair<size_t, size_t> ThreadPool::ChunkBounds(size_t n, size_t chunks,
                                                  size_t c) {
  size_t base = n / chunks;
  size_t extra = n % chunks;
  size_t begin = c * base + (c < extra ? c : extra);
  size_t end = begin + base + (c < extra ? 1 : 0);
  return {begin, end};
}

void ThreadPool::RunChunk(size_t n, size_t chunk, bool fault_points) {
  // This pool has no work stealing by design (fixed contiguous chunking
  // keeps the parallel reduction deterministic), so there is no steal
  // counter to export — chunks_executed / chunks_skipped / chunk_failures
  // and the per-chunk latency histogram are the full story.
  //
  // Skip only chunks *above* the lowest failure seen so far: a chunk below
  // it must still run, because if it fails too it becomes the job's
  // deterministic first-failing chunk (see the header's failure
  // semantics).
  if (job_first_failed_.load(std::memory_order_acquire) < chunk) {
    OLAPIDX_METRIC_COUNTER(skipped, "pool.chunks_skipped");
    skipped.Add(1);
    return;
  }
  Status status;
  if (fault_points) {
#if defined(OLAPIDX_FAULT_INJECTION)
    status = FaultInjector::Global().Check("pool.chunk");
#endif
  }
  if (status.ok()) {
    auto [begin, end] = ChunkBounds(n, num_threads(), chunk);
    if (begin < end) {
      OLAPIDX_METRIC_COUNTER(executed, "pool.chunks_executed");
      OLAPIDX_METRIC_HISTOGRAM(latency, "pool.chunk_micros");
      executed.Add(1);
      const auto start = std::chrono::steady_clock::now();
      status = (*job_)(begin, end, chunk);
      latency.Observe(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start)
              .count()));
    }
  }
  if (!status.ok()) {
    OLAPIDX_METRIC_COUNTER(failures, "pool.chunk_failures");
    failures.Add(1);
    job_status_[chunk] = std::move(status);
    // Atomic min: record this chunk as the lowest failure if it is one.
    size_t lowest = job_first_failed_.load(std::memory_order_relaxed);
    while (chunk < lowest &&
           !job_first_failed_.compare_exchange_weak(
               lowest, chunk, std::memory_order_release,
               std::memory_order_relaxed)) {
    }
  }
}

Status ThreadPool::Run(size_t n, const StatusChunkFn& fn,
                       bool fault_points) {
  if (n == 0) return Status::Ok();
  OLAPIDX_METRIC_COUNTER(jobs, "pool.jobs");
  OLAPIDX_METRIC_GAUGE(active, "pool.active_jobs");
  jobs.Add(1);
  active.Add(1);
  // Balances the Add(1) above on every exit path of this function.
  struct ActiveJobGuard {
    Gauge& gauge;
    ~ActiveJobGuard() { gauge.Add(-1); }
  } active_guard{active};
  size_t threads = num_threads();
  std::fill(job_status_.begin(), job_status_.end(), Status::Ok());
  job_first_failed_.store(SIZE_MAX, std::memory_order_relaxed);
  job_ = &fn;
  job_n_ = n;
  job_fault_points_ = fault_points;
  if (threads == 1 || n == 1) {
    // Serial: a single chunk on the calling thread, same dispatch path.
    RunChunk(n, 0, fault_points);
  } else {
    {
      std::lock_guard<std::mutex> lock(mu_);
      pending_ = workers_.size();
      ++epoch_;
    }
    work_cv_.notify_all();
    RunChunk(n, 0, fault_points);
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
  }
  job_ = nullptr;
  // Deterministic reduction: the lowest-numbered failed chunk wins.
  for (Status& s : job_status_) {
    if (!s.ok()) return std::move(s);
  }
  return Status::Ok();
}

void ThreadPool::ParallelFor(size_t n, const ChunkFn& fn) {
  StatusChunkFn wrapped = [&fn](size_t begin, size_t end,
                                size_t chunk) -> Status {
    fn(begin, end, chunk);
    return Status::Ok();
  };
  Status status = Run(n, wrapped, /*fault_points=*/false);
  // Infallible chunks with fault points off: nothing can fail.
  OLAPIDX_CHECK(status.ok());
}

Status ThreadPool::TryParallelFor(size_t n, const StatusChunkFn& fn) {
  OLAPIDX_FAULT_POINT("pool.enqueue");
  return Run(n, fn, /*fault_points=*/true);
}

void ThreadPool::WorkerLoop(size_t worker) {
  uint64_t seen = 0;
  for (;;) {
    size_t n = 0;
    bool fault_points = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return shutdown_ || (epoch_ != seen && job_); });
      if (shutdown_) return;
      seen = epoch_;
      n = job_n_;
      fault_points = job_fault_points_;
    }
    RunChunk(n, worker, fault_points);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --pending_;
    }
    done_cv_.notify_one();
  }
}

ThreadPool& ThreadPool::Shared() {
  // Leaked deliberately: joining workers during static destruction is a
  // reliable source of shutdown hangs.
  static ThreadPool* pool = [] {
    size_t threads = std::thread::hardware_concurrency();
    if (const char* env = std::getenv("OLAPIDX_THREADS")) {
      long parsed = std::strtol(env, nullptr, 10);
      if (parsed > 0) threads = static_cast<size_t>(parsed);
    }
    return new ThreadPool(threads == 0 ? 1 : threads);
  }();
  return *pool;
}

}  // namespace olapidx
