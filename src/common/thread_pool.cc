#include "common/thread_pool.h"

#include <cstdlib>

namespace olapidx {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads - 1);
  for (size_t w = 1; w < num_threads; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::pair<size_t, size_t> ThreadPool::ChunkBounds(size_t n, size_t chunks,
                                                  size_t c) {
  size_t base = n / chunks;
  size_t extra = n % chunks;
  size_t begin = c * base + (c < extra ? c : extra);
  size_t end = begin + base + (c < extra ? 1 : 0);
  return {begin, end};
}

void ThreadPool::ParallelFor(size_t n, const ChunkFn& fn) {
  if (n == 0) return;
  size_t threads = num_threads();
  if (threads == 1 || n == 1) {
    fn(0, n, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    job_n_ = n;
    pending_ = workers_.size();
    ++epoch_;
  }
  work_cv_.notify_all();
  auto [begin, end] = ChunkBounds(n, threads, 0);
  if (begin < end) fn(begin, end, 0);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  job_ = nullptr;
}

void ThreadPool::WorkerLoop(size_t worker) {
  uint64_t seen = 0;
  for (;;) {
    const ChunkFn* fn = nullptr;
    size_t n = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return shutdown_ || (epoch_ != seen && job_); });
      if (shutdown_) return;
      seen = epoch_;
      fn = job_;
      n = job_n_;
    }
    auto [begin, end] = ChunkBounds(n, num_threads(), worker);
    if (begin < end) (*fn)(begin, end, worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --pending_;
    }
    done_cv_.notify_one();
  }
}

ThreadPool& ThreadPool::Shared() {
  // Leaked deliberately: joining workers during static destruction is a
  // reliable source of shutdown hangs.
  static ThreadPool* pool = [] {
    size_t threads = std::thread::hardware_concurrency();
    if (const char* env = std::getenv("OLAPIDX_THREADS")) {
      long parsed = std::strtol(env, nullptr, 10);
      if (parsed > 0) threads = static_cast<size_t>(parsed);
    }
    return new ThreadPool(threads == 0 ? 1 : threads);
  }();
  return *pool;
}

}  // namespace olapidx
