// Cooperative interruption primitives for long-running advisor work.
//
// Deadline is a point on the monotonic clock (immune to wall-clock steps);
// CancelToken is a thread-safe flag another thread flips to request a stop.
// RunControl bundles both, plus a deterministic step budget, and is what
// the selection algorithms thread through their per-stage candidate loops:
// they poll StopRequested() at safe points and return their best-so-far
// result (the "anytime" contract, see SelectionResult::completed).

#ifndef OLAPIDX_COMMON_DEADLINE_H_
#define OLAPIDX_COMMON_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

#include "common/status.h"

namespace olapidx {

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  // Default: never expires.
  Deadline() : tp_(Clock::time_point::max()) {}

  static Deadline Infinite() { return Deadline(); }
  static Deadline At(Clock::time_point tp) { return Deadline(tp); }
  static Deadline AfterMillis(int64_t ms) {
    return Deadline(Clock::now() + std::chrono::milliseconds(ms));
  }
  static Deadline AfterMicros(int64_t us) {
    return Deadline(Clock::now() + std::chrono::microseconds(us));
  }

  bool infinite() const { return tp_ == Clock::time_point::max(); }
  bool expired() const { return !infinite() && Clock::now() >= tp_; }

  // Microseconds until expiry; negative once expired, INT64_MAX if
  // infinite.
  int64_t remaining_micros() const {
    if (infinite()) return INT64_MAX;
    return std::chrono::duration_cast<std::chrono::microseconds>(tp_ -
                                                                 Clock::now())
        .count();
  }

 private:
  explicit Deadline(Clock::time_point tp) : tp_(tp) {}
  Clock::time_point tp_;
};

// A one-way stop flag. The owner keeps it alive for the duration of the
// run; any thread may call Cancel(), the running algorithm polls
// cancelled() at safe points. Cancellation is cooperative and sticky.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

// Interruption inputs for one algorithm run. Default-constructed =
// uninterruptible (infinite deadline, no token, unlimited steps).
struct RunControl {
  Deadline deadline;
  // Not owned; may be null. Must outlive the run when set.
  const CancelToken* cancel = nullptr;
  // Deterministic budget on the algorithm's own step unit (a greedy
  // *stage* for the selection algorithms; replayed checkpoint stages do
  // not count). Unlike the wall-clock deadline this interrupts at exactly
  // the same point on every run, which is what the resume tests and
  // steppers rely on. SIZE_MAX = unlimited.
  size_t max_steps = SIZE_MAX;

  bool unlimited() const {
    return deadline.infinite() && cancel == nullptr &&
           max_steps == SIZE_MAX;
  }

  // Polled inside candidate loops. Does not consider max_steps — step
  // accounting lives with the algorithm, which knows its step unit.
  bool StopRequested() const {
    return (cancel != nullptr && cancel->cancelled()) || deadline.expired();
  }

  // The interruption Status matching StopRequested() — cancellation wins
  // over an expired deadline (the caller asked first).
  Status StopStatus() const {
    if (cancel != nullptr && cancel->cancelled()) {
      return Status::Cancelled("cancellation requested");
    }
    return Status::DeadlineExceeded("deadline expired");
  }
};

}  // namespace olapidx

#endif  // OLAPIDX_COMMON_DEADLINE_H_
