// Bounded retry with deterministic exponential backoff, for transient
// (kUnavailable) failures at service boundaries — the injected-fault code
// and, in a real deployment, flaky IO. The delay schedule is a pure
// function of the attempt number (no jitter), so a seeded fault plan
// produces the exact same retry trace on every run; tests can also swap
// the sleeper out entirely.
//
// Retrying is *only* for kUnavailable: every other code either reports a
// caller mistake (retrying cannot help) or an intentional interruption
// (retrying would violate the caller's own deadline).

#ifndef OLAPIDX_COMMON_BACKOFF_H_
#define OLAPIDX_COMMON_BACKOFF_H_

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>

#include "common/deadline.h"
#include "common/status.h"

namespace olapidx {

struct RetryPolicy {
  // Total tries, including the first (1 = no retries).
  size_t max_attempts = 3;
  // Delay before retry k (1-based) is base_micros * multiplier^(k-1),
  // capped at max_micros.
  int64_t base_micros = 200;
  double multiplier = 2.0;
  int64_t max_micros = 50'000;

  // Only transient failures are worth retrying.
  bool ShouldRetry(const Status& status, size_t attempts_done) const {
    return status.code() == StatusCode::kUnavailable &&
           attempts_done < max_attempts;
  }

  // Deterministic delay before the (attempts_done + 1)-th attempt.
  int64_t DelayMicros(size_t attempts_done) const {
    double delay = static_cast<double>(base_micros);
    for (size_t i = 1; i < attempts_done; ++i) delay *= multiplier;
    delay = std::min(delay, static_cast<double>(max_micros));
    return static_cast<int64_t>(delay);
  }
};

// Sleeps for `micros`; replaceable in tests to make retry loops instant.
using BackoffSleeper = std::function<void(int64_t micros)>;

inline void DefaultBackoffSleeper(int64_t micros) {
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

// Calls `fn` until it returns a non-retryable Status, the attempt budget is
// spent, or the next backoff would overrun `deadline`. Returns the last
// status; `retries_out` (optional) counts the re-attempts performed.
template <typename Fn>
Status RetryWithBackoff(const RetryPolicy& policy, const Deadline& deadline,
                        Fn&& fn, size_t* retries_out = nullptr,
                        const BackoffSleeper& sleeper =
                            DefaultBackoffSleeper) {
  if (retries_out != nullptr) *retries_out = 0;
  Status status;
  for (size_t attempt = 1;; ++attempt) {
    if (deadline.expired()) {
      return Status::DeadlineExceeded("deadline expired before attempt " +
                                      std::to_string(attempt));
    }
    status = fn();
    if (!policy.ShouldRetry(status, attempt)) return status;
    int64_t delay = policy.DelayMicros(attempt);
    if (delay >= deadline.remaining_micros()) {
      // Sleeping would consume the caller's whole budget; report the
      // transient failure as-is and let the caller decide.
      return status;
    }
    if (delay > 0) sleeper(delay);
    if (retries_out != nullptr) ++*retries_out;
  }
}

}  // namespace olapidx

#endif  // OLAPIDX_COMMON_BACKOFF_H_
