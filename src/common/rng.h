// Deterministic pseudo-random number generation.
//
// All experiments in this repository are reproducible bit-for-bit, so we use
// our own small generators instead of std::mt19937 (whose distributions are
// not portable across standard-library implementations).

#ifndef OLAPIDX_COMMON_RNG_H_
#define OLAPIDX_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace olapidx {

// SplitMix64: tiny, high-quality 64-bit generator (Steele et al., 2014).
// Used both directly and to seed Pcg32.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// PCG-XSH-RR 64/32 (O'Neill, 2014). The repository-wide workhorse generator.
class Pcg32 {
 public:
  explicit Pcg32(uint64_t seed, uint64_t stream = 0x14057b7ef767814fULL);

  // Uniform 32-bit value.
  uint32_t Next();

  // Uniform in [0, bound) without modulo bias. bound must be > 0.
  uint32_t NextBounded(uint32_t bound);

  // Uniform in [0, 1).
  double NextDouble();

 private:
  uint64_t state_;
  uint64_t inc_;
};

// Samples from a Zipf(s) distribution over ranks {0, 1, ..., n-1}
// (rank 0 is the most probable). Precomputes the CDF; O(log n) per sample.
class ZipfSampler {
 public:
  // n must be > 0; skew s >= 0 (s == 0 degenerates to uniform).
  ZipfSampler(uint32_t n, double skew);

  uint32_t Sample(Pcg32& rng) const;

  // Probability mass of rank `k`.
  double Probability(uint32_t k) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace olapidx

#endif  // OLAPIDX_COMMON_RNG_H_
