// A fixed-size thread pool for data-parallel loops over dense index
// ranges — the parallel substrate of the greedy selection algorithms.
//
// Scheduling is deliberately work-stealing-free: ParallelFor partitions
// [0, n) into num_threads() contiguous chunks, fixed purely by (n,
// num_threads). Each worker owns one chunk, so chunk boundaries — and
// therefore any per-chunk accumulation a caller does — are reproducible
// across runs with the same thread count. Determinism of the *result* is
// the caller's job: accumulate into per-chunk slots and reduce the slots
// in chunk order after ParallelFor returns (see r_greedy.cc for the
// canonical pattern).
//
// Failure semantics (TryParallelFor): a chunk signals failure by returning
// a non-OK Status. The pool never deadlocks or tears down the process on a
// failed chunk — every chunk's completion is accounted for, the pool stays
// reusable, and the destructor joins cleanly afterwards. Failure
// fast-path: once chunk c has failed, chunks *above* c that have not
// started yet are skipped (their Status stays OK); chunks below c always
// run, so the call returns the Status of the lowest-numbered chunk whose
// body fails — deterministic for any thread interleaving whenever chunk
// outcomes are themselves deterministic functions of (begin, end, chunk).
// Fault-injected service runs rely on this: an ArmAlways'd fault yields
// the same first-failing-chunk message on every run.

#ifndef OLAPIDX_COMMON_THREAD_POOL_H_
#define OLAPIDX_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace olapidx {

class ThreadPool {
 public:
  // fn(begin, end, chunk): process indexes [begin, end); `chunk` is the
  // chunk's ordinal in [0, num_threads()), usable as a scratch-slot index.
  using ChunkFn = std::function<void(size_t begin, size_t end, size_t chunk)>;
  // Same contract, but the chunk may fail. A non-OK return makes the whole
  // TryParallelFor fail (see the failure semantics above); it must leave
  // the caller's data in a state that is safe to discard.
  using StatusChunkFn =
      std::function<Status(size_t begin, size_t end, size_t chunk)>;

  // Spawns num_threads - 1 workers; the calling thread acts as the final
  // worker inside ParallelFor. num_threads == 0 is treated as 1 (serial).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size() + 1; }

  // Runs fn over [0, n) split into num_threads() contiguous chunks (the
  // first n % num_threads() chunks get one extra element). Blocks until
  // every chunk finishes; the caller thread executes chunk 0. Not
  // reentrant: fn must not call ParallelFor on the same pool. Infallible
  // chunks only — no fault points fire on this path.
  void ParallelFor(size_t n, const ChunkFn& fn);

  // Fallible variant: returns the first (lowest-chunk) failure, OK when
  // every chunk succeeded. Crosses the "pool.enqueue" fault point before
  // dispatch and "pool.chunk" before each chunk body.
  Status TryParallelFor(size_t n, const StatusChunkFn& fn);

  // Process-wide pool, sized from the OLAPIDX_THREADS environment
  // variable when set (and positive), else std::thread::hardware_concurrency.
  static ThreadPool& Shared();

  // [begin, end) of chunk `c` when [0, n) is split into `chunks` parts.
  static std::pair<size_t, size_t> ChunkBounds(size_t n, size_t chunks,
                                               size_t c);

 private:
  // Shared engine behind both ParallelFor variants. `fault_points` guards
  // the "pool.chunk" site so the infallible path can never trip an armed
  // fault it has no way to report.
  Status Run(size_t n, const StatusChunkFn& fn, bool fault_points);
  // One chunk's dispatch: fault point (when enabled), skip-after-failure,
  // body, status slot, failure flag.
  void RunChunk(size_t n, size_t chunk, bool fault_points);
  void WorkerLoop(size_t worker);

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const StatusChunkFn* job_ = nullptr;  // non-null while a job is active
  size_t job_n_ = 0;
  bool job_fault_points_ = false;
  uint64_t epoch_ = 0;     // bumped per ParallelFor to wake workers
  size_t pending_ = 0;     // workers still running the current job
  bool shutdown_ = false;
  // Per-chunk outcome of the active job; chunk c writes only slot c.
  std::vector<Status> job_status_;
  // Lowest chunk ordinal that has failed so far (SIZE_MAX = none). Chunks
  // above it skip; chunks below it still run, keeping the first-failing
  // chunk — and therefore the returned Status — deterministic.
  std::atomic<size_t> job_first_failed_{SIZE_MAX};
  std::vector<std::thread> workers_;
};

}  // namespace olapidx

#endif  // OLAPIDX_COMMON_THREAD_POOL_H_
