// A fixed-size thread pool for data-parallel loops over dense index
// ranges — the parallel substrate of the greedy selection algorithms.
//
// Scheduling is deliberately work-stealing-free: ParallelFor partitions
// [0, n) into num_threads() contiguous chunks, fixed purely by (n,
// num_threads). Each worker owns one chunk, so chunk boundaries — and
// therefore any per-chunk accumulation a caller does — are reproducible
// across runs with the same thread count. Determinism of the *result* is
// the caller's job: accumulate into per-chunk slots and reduce the slots
// in chunk order after ParallelFor returns (see r_greedy.cc for the
// canonical pattern).

#ifndef OLAPIDX_COMMON_THREAD_POOL_H_
#define OLAPIDX_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace olapidx {

class ThreadPool {
 public:
  // fn(begin, end, chunk): process indexes [begin, end); `chunk` is the
  // chunk's ordinal in [0, num_threads()), usable as a scratch-slot index.
  using ChunkFn = std::function<void(size_t begin, size_t end, size_t chunk)>;

  // Spawns num_threads - 1 workers; the calling thread acts as the final
  // worker inside ParallelFor. num_threads == 0 is treated as 1 (serial).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size() + 1; }

  // Runs fn over [0, n) split into num_threads() contiguous chunks (the
  // first n % num_threads() chunks get one extra element). Blocks until
  // every chunk finishes; the caller thread executes chunk 0. Not
  // reentrant: fn must not call ParallelFor on the same pool.
  void ParallelFor(size_t n, const ChunkFn& fn);

  // Process-wide pool, sized from the OLAPIDX_THREADS environment
  // variable when set (and positive), else std::thread::hardware_concurrency.
  static ThreadPool& Shared();

  // [begin, end) of chunk `c` when [0, n) is split into `chunks` parts.
  static std::pair<size_t, size_t> ChunkBounds(size_t n, size_t chunks,
                                               size_t c);

 private:
  void WorkerLoop(size_t worker);

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const ChunkFn* job_ = nullptr;  // non-null while a ParallelFor is active
  size_t job_n_ = 0;
  uint64_t epoch_ = 0;     // bumped per ParallelFor to wake workers
  size_t pending_ = 0;     // workers still running the current job
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace olapidx

#endif  // OLAPIDX_COMMON_THREAD_POOL_H_
