#include "common/rng.h"

#include <algorithm>
#include <cmath>

namespace olapidx {

Pcg32::Pcg32(uint64_t seed, uint64_t stream) {
  inc_ = (stream << 1u) | 1u;
  state_ = 0;
  (void)Next();
  state_ += seed;
  (void)Next();
}

uint32_t Pcg32::Next() {
  uint64_t oldstate = state_;
  state_ = oldstate * 6364136223846793005ULL + inc_;
  uint32_t xorshifted =
      static_cast<uint32_t>(((oldstate >> 18u) ^ oldstate) >> 27u);
  uint32_t rot = static_cast<uint32_t>(oldstate >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

uint32_t Pcg32::NextBounded(uint32_t bound) {
  OLAPIDX_CHECK(bound > 0);
  // Lemire-style rejection to avoid modulo bias.
  uint32_t threshold = (0u - bound) % bound;
  for (;;) {
    uint32_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Pcg32::NextDouble() {
  // 32 bits of randomness is plenty for workload generation.
  return static_cast<double>(Next()) * 0x1.0p-32;
}

ZipfSampler::ZipfSampler(uint32_t n, double skew) {
  OLAPIDX_CHECK(n > 0);
  OLAPIDX_CHECK(skew >= 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (uint32_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), skew);
    cdf_[k] = total;
  }
  for (uint32_t k = 0; k < n; ++k) cdf_[k] /= total;
  cdf_.back() = 1.0;  // Guard against floating-point shortfall.
}

uint32_t ZipfSampler::Sample(Pcg32& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<uint32_t>(it - cdf_.begin());
}

double ZipfSampler::Probability(uint32_t k) const {
  OLAPIDX_CHECK(k < cdf_.size());
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace olapidx
