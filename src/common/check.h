// Lightweight invariant-checking macros.
//
// The library does not use exceptions (see DESIGN.md): programming errors and
// violated invariants abort with a message. OLAPIDX_CHECK is always on;
// OLAPIDX_DCHECK compiles out in NDEBUG builds and is meant for hot paths.

#ifndef OLAPIDX_COMMON_CHECK_H_
#define OLAPIDX_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace olapidx::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "OLAPIDX_CHECK failed at %s:%d: %s\n", file, line,
               expr);
  std::abort();
}

}  // namespace olapidx::internal

#define OLAPIDX_CHECK(expr)                                      \
  do {                                                           \
    if (!(expr)) {                                               \
      ::olapidx::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                            \
  } while (false)

#ifdef NDEBUG
#define OLAPIDX_DCHECK(expr) \
  do {                       \
  } while (false)
#else
#define OLAPIDX_DCHECK(expr) OLAPIDX_CHECK(expr)
#endif

#endif  // OLAPIDX_COMMON_CHECK_H_
