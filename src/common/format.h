// Human-readable formatting helpers shared by benches and examples.

#ifndef OLAPIDX_COMMON_FORMAT_H_
#define OLAPIDX_COMMON_FORMAT_H_

#include <cstdint>
#include <string>

namespace olapidx {

// Formats a row count the way the paper does: "6M", "0.8M", "10K", "1".
// Uses up to two significant decimals and strips trailing zeros.
std::string FormatRowCount(double rows);

// Formats a double with `decimals` fractional digits ("0.74").
std::string FormatFixed(double value, int decimals);

// Formats a fraction as a percentage string ("39.5%").
std::string FormatPercent(double fraction, int decimals = 1);

}  // namespace olapidx

#endif  // OLAPIDX_COMMON_FORMAT_H_
