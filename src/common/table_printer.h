// Minimal fixed-width text-table printer used by the experiment benches to
// emit paper-style tables to stdout.

#ifndef OLAPIDX_COMMON_TABLE_PRINTER_H_
#define OLAPIDX_COMMON_TABLE_PRINTER_H_

#include <cstdio>
#include <string>
#include <vector>

namespace olapidx {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  // Adds a data row; must have the same arity as the header row.
  void AddRow(std::vector<std::string> cells);

  // Renders the table (header, separator, rows) to `out`.
  void Print(std::FILE* out = stdout) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace olapidx

#endif  // OLAPIDX_COMMON_TABLE_PRINTER_H_
