// Crash-safe journal file primitives for the resident advisor service.
//
// AtomicWriteFile implements the classic write-temp + atomic-rename
// protocol: readers (including a process restarted after a crash at any
// instant) observe either the previous complete file or the new complete
// file, never a torn mix. A content checksum (Fnv1a64) lets loaders detect
// silent corruption of the stored artifact and fail with kDataLoss instead
// of resuming from garbage.
//
// Fault points: "journal.write" (before the temp file is created) and
// "journal.read" (before the file is opened) make both directions
// injectable for the service soak tests.

#ifndef OLAPIDX_COMMON_JOURNAL_H_
#define OLAPIDX_COMMON_JOURNAL_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace olapidx {

// FNV-1a 64-bit over `data`; the journal's corruption checksum.
uint64_t Fnv1a64(const void* data, size_t size, uint64_t seed = 0);
inline uint64_t Fnv1a64(const std::string& s, uint64_t seed = 0) {
  return Fnv1a64(s.data(), s.size(), seed);
}

// 16-hex-digit rendering used by checksum and fingerprint lines.
std::string HashToHex(uint64_t hash);
// Parses exactly 16 hex digits; false on anything else.
bool ParseHexHash(const std::string& text, uint64_t* out);

// Writes `content` to `path` via "<path>.tmp" + rename. The temp file is
// flushed before the rename; a failure at any step removes the temp file
// and leaves any previous `path` untouched. kUnavailable on IO failure.
Status AtomicWriteFile(const std::string& path, const std::string& content);

// Reads the whole file. kNotFound when it does not exist, kUnavailable on
// a read failure (or injected fault).
StatusOr<std::string> ReadFileToString(const std::string& path);

// True iff `path` exists (regular file); journal presence probe.
bool FileExists(const std::string& path);

}  // namespace olapidx

#endif  // OLAPIDX_COMMON_JOURNAL_H_
