#include "cost/hyperloglog.h"

#include <bit>
#include <cmath>

namespace olapidx {

HyperLogLog::HyperLogLog(int precision) : precision_(precision) {
  OLAPIDX_CHECK(precision >= 4 && precision <= 18);
  num_registers_ = 1u << precision;
  registers_.assign(num_registers_, 0);
}

void HyperLogLog::AddHash(uint64_t hash) {
  uint32_t index = static_cast<uint32_t>(hash >> (64 - precision_));
  uint64_t rest = hash << precision_;
  // Rank: position of the leftmost 1-bit in the remaining bits (1-based);
  // all-zero rest gets the maximum rank.
  int rank = rest == 0 ? (64 - precision_ + 1) : (std::countl_zero(rest) + 1);
  if (registers_[index] < rank) {
    registers_[index] = static_cast<uint8_t>(rank);
  }
}

double HyperLogLog::Estimate() const {
  double m = static_cast<double>(num_registers_);
  // Bias-correction constant alpha_m.
  double alpha;
  switch (num_registers_) {
    case 16:
      alpha = 0.673;
      break;
    case 32:
      alpha = 0.697;
      break;
    case 64:
      alpha = 0.709;
      break;
    default:
      alpha = 0.7213 / (1.0 + 1.079 / m);
      break;
  }
  double sum = 0.0;
  uint32_t zeros = 0;
  for (uint8_t r : registers_) {
    sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) ++zeros;
  }
  double estimate = alpha * m * m / sum;
  // Small-range correction: linear counting while any register is empty
  // and the raw estimate is below 2.5m.
  if (estimate <= 2.5 * m && zeros > 0) {
    estimate = m * std::log(m / static_cast<double>(zeros));
  }
  return estimate;
}

void HyperLogLog::Merge(const HyperLogLog& other) {
  OLAPIDX_CHECK(precision_ == other.precision_);
  for (uint32_t i = 0; i < num_registers_; ++i) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
}

}  // namespace olapidx
