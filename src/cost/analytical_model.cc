#include "cost/analytical_model.h"

#include <algorithm>
#include <cmath>

namespace olapidx {

double ExpectedDistinct(double domain, double rows) {
  OLAPIDX_CHECK(domain >= 1.0);
  OLAPIDX_CHECK(rows >= 0.0);
  if (rows == 0.0) return 0.0;
  if (domain == 1.0) return 1.0;
  // D · (1 − (1 − 1/D)^w) computed as −D·expm1(w·log1p(−1/D)) for accuracy
  // when D is huge (the naive form collapses to 0 or D).
  double log_keep = std::log1p(-1.0 / domain);
  double expected = -domain * std::expm1(rows * log_keep);
  return std::clamp(expected, 1.0, std::min(domain, rows));
}

ViewSizes AnalyticalViewSizes(const CubeSchema& schema, double raw_rows) {
  OLAPIDX_CHECK(raw_rows >= 1.0);
  ViewSizes sizes(schema.num_dimensions());
  for (uint32_t v = 0; v < sizes.num_views(); ++v) {
    AttributeSet attrs = AttributeSet::FromMask(v);
    sizes.Set(attrs, std::max(1.0, ExpectedDistinct(schema.DomainSize(attrs),
                                                    raw_rows)));
  }
  // ExpectedDistinct is monotone in the domain analytically, but at 12+
  // dimensions the expm1/log1p composition can violate subset-monotonicity
  // by a few ulps across the 2^n views; pin it by propagating each view's
  // size up to its immediate supersets (a no-op when already monotone).
  for (uint32_t v = 1; v < sizes.num_views(); ++v) {
    AttributeSet attrs = AttributeSet::FromMask(v);
    double size = sizes.SizeOf(attrs);
    for (int a : attrs.ToVector()) {
      size = std::max(size, sizes.SizeOf(attrs.Without(a)));
    }
    sizes.Set(attrs, size);
  }
  OLAPIDX_CHECK(sizes.IsMonotone());
  return sizes;
}

double CubeSparsity(const CubeSchema& schema, double raw_rows) {
  return raw_rows / schema.DomainSize(schema.AllAttributes());
}

double RawRowsForSparsity(const CubeSchema& schema, double sparsity) {
  OLAPIDX_CHECK(sparsity > 0.0 && sparsity <= 1.0);
  return sparsity * schema.DomainSize(schema.AllAttributes());
}

}  // namespace olapidx
