// The cost-model seam: graph builders and the advisor's plan coster charge
// each candidate access path through this interface instead of hard-coding
// the paper's |C|/|E| division. Two implementations exist:
//
//   * PaperCostModel — the Section 4 linear model, c = |C|/|E| rows. Its
//     arithmetic is exactly the expressions the builders used to inline
//     (one double division per prefix class), so a build under it is
//     bit-identical to the historical hard-coded path — pinned by the
//     equivalence tests.
//   * CalibratedCostModel (cost/calibrated_cost_model.h) — coefficients
//     fitted by least squares to the measured engine.
//
// The interface is deliberately narrow: both the lattice builders and the
// executor's planner reduce every access path to "scan R rows" or "probe an
// index on a view of R rows through a prefix of P distinct values", so two
// hooks cover every call site. Implementations must be immutable after
// construction — the builders invoke them concurrently from worker threads.

#ifndef OLAPIDX_COST_COST_MODEL_H_
#define OLAPIDX_COST_COST_MODEL_H_

namespace olapidx {

class CostModel {
 public:
  virtual ~CostModel() = default;

  // Cost of answering a query by scanning `view_rows` rows (a view scan, or
  // the raw fact table when the caller passes the penalized base size).
  virtual double ScanCost(double view_rows) const = 0;

  // Cost of answering a query from a view of `view_rows` rows through an
  // index whose longest selection-only key prefix has `prefix_rows`
  // distinct values (|E| in the paper; 1 for a useless index, which must
  // degrade to ScanCost-or-worse so the builders' pruning rule stays sound).
  virtual double IndexCost(double view_rows, double prefix_rows) const = 0;

  // Short stable identifier ("paper", "calibrated") for reports and logs.
  virtual const char* name() const = 0;
};

// Section 4's linear model behind the seam: ScanCost is the row count
// itself and IndexCost is the |C|/|E| division, evaluated in exactly the
// order the builders historically inlined.
class PaperCostModel final : public CostModel {
 public:
  double ScanCost(double view_rows) const override { return view_rows; }
  double IndexCost(double view_rows, double prefix_rows) const override {
    return view_rows / prefix_rows;
  }
  const char* name() const override { return "paper"; }

  // Shared immutable instance; the default whenever an options struct
  // leaves its cost_model unset.
  static const PaperCostModel& Instance() {
    static const PaperCostModel kInstance;
    return kInstance;
  }
};

}  // namespace olapidx

#endif  // OLAPIDX_COST_COST_MODEL_H_
