#include "cost/view_sizes.h"

namespace olapidx {

double ViewSizes::TotalViewSpace() const {
  double total = 0.0;
  for (double s : sizes_) total += s;
  return total;
}

double ViewSizes::TotalFatIndexSpace() const {
  double total = 0.0;
  for (uint32_t v = 0; v < num_views(); ++v) {
    int m = AttributeSet::FromMask(v).size();
    total += static_cast<double>(CubeLattice::NumFatIndexes(m)) * sizes_[v];
  }
  return total;
}

bool ViewSizes::IsMonotone() const {
  for (uint32_t v = 0; v < num_views(); ++v) {
    AttributeSet attrs = AttributeSet::FromMask(v);
    for (int a = 0; a < n_; ++a) {
      if (attrs.Contains(a)) continue;
      // Adding an attribute can only increase (or keep) the row count.
      if (sizes_[attrs.With(a).mask()] + 1e-9 < sizes_[v]) return false;
    }
  }
  return true;
}

}  // namespace olapidx
