// Distinct-value estimation from a uniform row sample (Section 4.2.1 points
// at sampling methods, citing [HNS95]). Estimating |V| for a view is exactly
// estimating the number of distinct group-by key combinations in the raw
// data, so these estimators are the bridge between a materialized fact table
// and the ViewSizes the selection algorithms consume.

#ifndef OLAPIDX_COST_DISTINCT_ESTIMATOR_H_
#define OLAPIDX_COST_DISTINCT_ESTIMATOR_H_

#include <cstdint>
#include <vector>

namespace olapidx {

// Exact number of distinct values in `values`.
uint64_t ExactDistinct(const std::vector<uint64_t>& values);

// Estimators take a sample of `sample` values drawn uniformly (with
// replacement is acceptable) from a population of `population_size` values
// and return an estimate of the population's distinct count.

// Chao's estimator: d_n + f1^2 / (2 f2), where f_i is the number of values
// occurring exactly i times in the sample. Falls back to d_n when f2 == 0.
double ChaoEstimate(const std::vector<uint64_t>& sample,
                    uint64_t population_size);

// GEE (Guaranteed-Error Estimator, Charikar et al.):
// sqrt(N/n) · f1 + Σ_{i>=2} f_i — within a provable factor of sqrt(N/n).
double GeeEstimate(const std::vector<uint64_t>& sample,
                   uint64_t population_size);

// Naive scale-up: d_n · N / n, clipped to [d_n, N]. A deliberately crude
// baseline that shows why principled estimators matter.
double NaiveScaleUpEstimate(const std::vector<uint64_t>& sample,
                            uint64_t population_size);

}  // namespace olapidx

#endif  // OLAPIDX_COST_DISTINCT_ESTIMATOR_H_
