#include "cost/distinct_estimator.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/check.h"

namespace olapidx {

namespace {

// Frequency-of-frequencies: f[i] = number of distinct values occurring
// exactly i times in the sample. Returns (d_n, f1, f2, tail) where tail is
// Σ_{i>=2} f_i.
struct SampleProfile {
  uint64_t distinct = 0;
  uint64_t f1 = 0;
  uint64_t f2 = 0;
  uint64_t tail = 0;  // distinct values seen at least twice
};

SampleProfile Profile(const std::vector<uint64_t>& sample) {
  std::unordered_map<uint64_t, uint64_t> counts;
  counts.reserve(sample.size() * 2);
  for (uint64_t v : sample) ++counts[v];
  SampleProfile p;
  p.distinct = counts.size();
  for (const auto& [value, count] : counts) {
    (void)value;
    if (count == 1) {
      ++p.f1;
    } else {
      ++p.tail;
      if (count == 2) ++p.f2;
    }
  }
  return p;
}

}  // namespace

uint64_t ExactDistinct(const std::vector<uint64_t>& values) {
  std::vector<uint64_t> sorted(values);
  std::sort(sorted.begin(), sorted.end());
  return static_cast<uint64_t>(
      std::unique(sorted.begin(), sorted.end()) - sorted.begin());
}

double ChaoEstimate(const std::vector<uint64_t>& sample,
                    uint64_t population_size) {
  OLAPIDX_CHECK(!sample.empty());
  SampleProfile p = Profile(sample);
  double estimate = static_cast<double>(p.distinct);
  if (p.f2 > 0) {
    estimate += static_cast<double>(p.f1) * static_cast<double>(p.f1) /
                (2.0 * static_cast<double>(p.f2));
  }
  return std::clamp(estimate, static_cast<double>(p.distinct),
                    static_cast<double>(population_size));
}

double GeeEstimate(const std::vector<uint64_t>& sample,
                   uint64_t population_size) {
  OLAPIDX_CHECK(!sample.empty());
  OLAPIDX_CHECK(population_size >= sample.size());
  SampleProfile p = Profile(sample);
  double scale = std::sqrt(static_cast<double>(population_size) /
                           static_cast<double>(sample.size()));
  double estimate =
      scale * static_cast<double>(p.f1) + static_cast<double>(p.tail);
  return std::clamp(estimate, static_cast<double>(p.distinct),
                    static_cast<double>(population_size));
}

double NaiveScaleUpEstimate(const std::vector<uint64_t>& sample,
                            uint64_t population_size) {
  OLAPIDX_CHECK(!sample.empty());
  double d = static_cast<double>(ExactDistinct(sample));
  double scaled = d * static_cast<double>(population_size) /
                  static_cast<double>(sample.size());
  return std::clamp(scaled, d, static_cast<double>(population_size));
}

}  // namespace olapidx
