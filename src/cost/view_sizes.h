// ViewSizes: row counts |V| for every view of a cube lattice — the only
// statistics the selection algorithms need (Section 4.2). Sizes may come
// from the analytical model, from sampling, or from exact materialization.

#ifndef OLAPIDX_COST_VIEW_SIZES_H_
#define OLAPIDX_COST_VIEW_SIZES_H_

#include <vector>

#include "lattice/cube_lattice.h"

namespace olapidx {

class ViewSizes {
 public:
  ViewSizes() = default;
  explicit ViewSizes(int num_dimensions)
      : n_(num_dimensions),
        sizes_(static_cast<size_t>(1) << num_dimensions, 0.0) {
    OLAPIDX_CHECK(num_dimensions >= 0 && num_dimensions <= kMaxDimensions);
    // The apex view "none" always has exactly one row (the grand total).
    sizes_[0] = 1.0;
  }

  int num_dimensions() const { return n_; }
  uint32_t num_views() const { return static_cast<uint32_t>(sizes_.size()); }

  double operator[](ViewId v) const {
    OLAPIDX_DCHECK(v < num_views());
    return sizes_[v];
  }
  double SizeOf(AttributeSet attrs) const { return (*this)[attrs.mask()]; }

  void Set(AttributeSet attrs, double rows) {
    OLAPIDX_CHECK(attrs.mask() < num_views());
    OLAPIDX_CHECK(rows >= 1.0);
    sizes_[attrs.mask()] = rows;
  }

  // True once every view has been assigned a (>= 1) size.
  bool Complete() const {
    for (double s : sizes_) {
      if (s < 1.0) return false;
    }
    return true;
  }

  // Σ|V| over all views — the space needed to materialize every subcube.
  double TotalViewSpace() const;

  // Σ over views of |attrs(V)|! · |V| — the space needed to additionally
  // materialize every fat index (Example 2.1's "around 80M rows" number
  // includes both views and indexes).
  double TotalFatIndexSpace() const;

  // Monotonicity check: a view is never larger than any view it depends on
  // (|V1| <= |V2| whenever attrs(V1) ⊆ attrs(V2)). The analytical and exact
  // estimators guarantee this; sampled sizes may need repair.
  bool IsMonotone() const;

 private:
  int n_ = 0;
  std::vector<double> sizes_;
};

}  // namespace olapidx

#endif  // OLAPIDX_COST_VIEW_SIZES_H_
