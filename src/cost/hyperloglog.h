// HyperLogLog distinct-value sketch (Flajolet et al., 2007): estimates the
// number of distinct values in a stream using 2^p 6-bit registers. Unlike
// the sampling estimators in distinct_estimator.h, HLL sees *every* row
// once (one streaming pass over the fact table suffices for all 2^n views
// simultaneously) and its error is ~1.04/sqrt(2^p) regardless of the data
// distribution — the practical way to fill ViewSizes on large cubes.

#ifndef OLAPIDX_COST_HYPERLOGLOG_H_
#define OLAPIDX_COST_HYPERLOGLOG_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace olapidx {

class HyperLogLog {
 public:
  // precision p in [4, 18]: 2^p registers, standard error 1.04/sqrt(2^p)
  // (p = 12 → ~1.6%).
  explicit HyperLogLog(int precision = 12);

  int precision() const { return precision_; }

  // Adds an already-hashed 64-bit value. Callers should hash raw values
  // (e.g. with SplitMix64-style finalizers) before adding; composite keys
  // from KeyCodec must be hashed, not added directly.
  void AddHash(uint64_t hash);

  // Convenience: hashes `value` with a strong 64-bit mixer, then adds.
  void Add(uint64_t value) { AddHash(Mix(value)); }

  // Current cardinality estimate, with the standard small-range
  // (linear counting) correction.
  double Estimate() const;

  // Merges another sketch of the same precision (register-wise max).
  void Merge(const HyperLogLog& other);

  // A strong 64-bit finalizer (SplitMix64's mixing function).
  static uint64_t Mix(uint64_t x) {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
  }

 private:
  int precision_;
  uint32_t num_registers_;
  std::vector<uint8_t> registers_;
};

}  // namespace olapidx

#endif  // OLAPIDX_COST_HYPERLOGLOG_H_
