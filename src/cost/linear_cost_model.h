// The linear cost model of Section 4: the cost of answering a slice query is
// the number of rows of the chosen view that must be processed,
//
//     c(Q, V, J) = |C| / |E|
//
// where C = attrs(V), J = I_D(V), and E is the longest prefix of D composed
// only of selection attributes of Q (|∅| = 1, i.e. a useless or absent index
// degrades to a full scan of V). Index sizes equal view sizes (Section
// 4.2.2), which is what makes only fat indexes worth considering.

#ifndef OLAPIDX_COST_LINEAR_COST_MODEL_H_
#define OLAPIDX_COST_LINEAR_COST_MODEL_H_

#include "cost/view_sizes.h"
#include "lattice/index_key.h"
#include "workload/slice_query.h"

namespace olapidx {

class LinearCostModel {
 public:
  explicit LinearCostModel(const ViewSizes* sizes) : sizes_(sizes) {
    OLAPIDX_CHECK(sizes != nullptr);
  }

  const ViewSizes& sizes() const { return *sizes_; }

  // Cost of answering `query` from the view with attributes `view_attrs`
  // using index `key` (pass IndexKey() for a plain scan). The query must be
  // answerable from the view, and the index key must use only view
  // attributes.
  double QueryCost(const SliceQuery& query, AttributeSet view_attrs,
                   const IndexKey& key) const {
    OLAPIDX_CHECK(query.AnswerableFrom(view_attrs));
    OLAPIDX_CHECK(key.AsSet().IsSubsetOf(view_attrs));
    AttributeSet prefix = key.LongestSelectionPrefix(query.selection());
    return sizes_->SizeOf(view_attrs) / sizes_->SizeOf(prefix);
  }

  // Cost shared by every index of the view whose maximal selection-only
  // key prefix is the set `prefix` — QueryCost factored through the
  // observation that c(Q,V,J) = |C|/|E| depends only on E, not on the key
  // order. The fast graph builder evaluates this once per prefix
  // equivalence class instead of once per permutation.
  double PrefixClassCost(AttributeSet view_attrs, AttributeSet prefix) const {
    OLAPIDX_DCHECK(prefix.IsSubsetOf(view_attrs));
    return sizes_->SizeOf(view_attrs) / sizes_->SizeOf(prefix);
  }

  // Scan cost (no index): |V|.
  double ScanCost(AttributeSet view_attrs) const {
    return sizes_->SizeOf(view_attrs);
  }

  // Space occupied by the view itself.
  double ViewSpace(AttributeSet view_attrs) const {
    return sizes_->SizeOf(view_attrs);
  }

  // Space occupied by any index on the view: same as the view (the number
  // of B-tree leaf entries equals the number of rows).
  double IndexSpace(AttributeSet view_attrs) const {
    return sizes_->SizeOf(view_attrs);
  }

 private:
  const ViewSizes* sizes_;
};

}  // namespace olapidx

#endif  // OLAPIDX_COST_LINEAR_COST_MODEL_H_
