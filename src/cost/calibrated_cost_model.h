// CalibratedCostModel: the measured-engine counterpart of the paper's
// linear model, behind the same CostModel seam.
//
// The paper costs a plan purely by rows touched (c = |C|/|E|). The real
// executor also pays per B-tree node it traverses and a fixed per-query
// overhead (planning, group-accumulator setup), so the calibrated model is
// the affine form
//
//     cost = per_row · touched_rows + per_node · node_touches + fixed
//
// with coefficients fitted by deterministic least squares over a
// calibration dataset of measured probes (calibration/calibrator.h). The
// features the model needs at *planning* time are estimated from the same
// quantities the builders already hoist: touched_rows = |C|/|E| and an
// analytic B-tree node-touch estimate (descend one node per level, then
// scan touched/fanout leaves). With per_node = fixed = 0 and per_row = 1
// the model degrades to the paper's — that is also the graceful fallback
// when metrics are compiled out and the node-touch column is degenerate.
//
// The fitter lives here too: plain normal equations solved by Gaussian
// elimination with partial pivoting, no external dependencies, bitwise
// deterministic for a fixed input. Rank-deficient inputs either fail with
// FailedPrecondition (strict) or drop the degenerate columns and refit
// (drop_degenerate_columns), never returning NaNs.

#ifndef OLAPIDX_COST_CALIBRATED_COST_MODEL_H_
#define OLAPIDX_COST_CALIBRATED_COST_MODEL_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "cost/cost_model.h"

namespace olapidx {

// ---------------------------------------------------------------------------
// Deterministic least squares.
// ---------------------------------------------------------------------------

struct LeastSquaresOptions {
  // When a feature column is (near-)linearly dependent on the others —
  // all-zero node touches with metrics compiled out being the canonical
  // case — drop it (coefficient 0, recorded in dropped_columns) and refit
  // instead of failing. Off = strict: such inputs return
  // FailedPrecondition.
  bool drop_degenerate_columns = false;
  // Relative pivot threshold below which a column counts as degenerate.
  double pivot_epsilon = 1e-9;
};

struct LeastSquaresFit {
  // One coefficient per input feature column; dropped columns get 0.
  std::vector<double> coefficients;
  // Ascending indices of columns dropped as degenerate (empty in strict
  // mode, which fails instead).
  std::vector<int> dropped_columns;
  // Residual sum of squares and R² against the fitted targets.
  double rss = 0.0;
  double r_squared = 0.0;
};

// Fits targets ≈ rows · coefficients by normal equations. Every row must
// have the same number of columns and every value must be finite; at least
// one row and one column are required (InvalidArgument otherwise). The
// result is identical across platforms for identical input bits: the
// elimination order is fixed and no randomness is involved.
StatusOr<LeastSquaresFit> FitLeastSquares(
    const std::vector<std::vector<double>>& rows,
    const std::vector<double>& targets,
    const LeastSquaresOptions& options = {});

// ---------------------------------------------------------------------------
// The fitted model.
// ---------------------------------------------------------------------------

struct CalibrationCoefficients {
  double per_row = 1.0;   // cost per row touched
  double per_node = 0.0;  // cost per B-tree node traversed
  double fixed = 0.0;     // per-query overhead
};

class CalibratedCostModel final : public CostModel {
 public:
  // `btree_fanout` must match the engine's B-trees (engine/btree.h defaults
  // to 64) — it drives the analytic node-touch estimate.
  explicit CalibratedCostModel(CalibrationCoefficients coefficients,
                               int btree_fanout = 64);

  double ScanCost(double view_rows) const override;
  double IndexCost(double view_rows, double prefix_rows) const override;
  const char* name() const override { return "calibrated"; }

  const CalibrationCoefficients& coefficients() const {
    return coefficients_;
  }
  int btree_fanout() const { return btree_fanout_; }

  // Analytic node touches of probing a view of `view_rows` rows through a
  // key prefix with `prefix_rows` distinct values: one node per tree level
  // on the descent, then one leaf per `btree_fanout` rows retrieved.
  double EstimatedNodeTouches(double view_rows, double prefix_rows) const;

  // ---- Persistence: "olapidx-costmodel v1" (see core/serialize.h for the
  // repo's line-format conventions). Doubles are written as C99 hexfloats
  // (%a), so Serialize → Parse reproduces every coefficient bit for bit.
  std::string Serialize() const;
  static StatusOr<CalibratedCostModel> Parse(const std::string& text);
  Status Save(const std::string& path) const;
  // InvalidArgument for unreadable or malformed files.
  static StatusOr<CalibratedCostModel> Load(const std::string& path);

 private:
  CalibrationCoefficients coefficients_;
  int btree_fanout_;
};

}  // namespace olapidx

#endif  // OLAPIDX_COST_CALIBRATED_COST_MODEL_H_
