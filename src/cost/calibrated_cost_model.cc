#include "cost/calibrated_cost_model.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/check.h"
#include "common/journal.h"

namespace olapidx {

namespace {

// Costs feed benefit computations that assume strictly positive plan
// costs; a degenerate fit (all coefficients ~0) must not emit 0 or a
// negative value.
constexpr double kMinCost = 1e-6;

bool AllFinite(const std::vector<double>& values) {
  for (double v : values) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

// Solves the dense symmetric system A·x = b in place by Gaussian
// elimination with partial pivoting. Returns the index of the first
// elimination step whose pivot falls below `pivot_floor` (a degenerate
// variable), or -1 on success with the solution in `x`.
int SolveInPlace(std::vector<std::vector<double>>& a, std::vector<double>& b,
                 double pivot_floor, std::vector<double>* x) {
  const int k = static_cast<int>(b.size());
  for (int j = 0; j < k; ++j) {
    int pivot = j;
    for (int r = j + 1; r < k; ++r) {
      if (std::fabs(a[static_cast<size_t>(r)][static_cast<size_t>(j)]) >
          std::fabs(a[static_cast<size_t>(pivot)][static_cast<size_t>(j)])) {
        pivot = r;
      }
    }
    if (std::fabs(a[static_cast<size_t>(pivot)][static_cast<size_t>(j)]) <=
        pivot_floor) {
      return j;
    }
    if (pivot != j) {
      std::swap(a[static_cast<size_t>(pivot)], a[static_cast<size_t>(j)]);
      std::swap(b[static_cast<size_t>(pivot)], b[static_cast<size_t>(j)]);
    }
    for (int r = j + 1; r < k; ++r) {
      const double f = a[static_cast<size_t>(r)][static_cast<size_t>(j)] /
                       a[static_cast<size_t>(j)][static_cast<size_t>(j)];
      if (f == 0.0) continue;
      for (int c = j; c < k; ++c) {
        a[static_cast<size_t>(r)][static_cast<size_t>(c)] -=
            f * a[static_cast<size_t>(j)][static_cast<size_t>(c)];
      }
      b[static_cast<size_t>(r)] -= f * b[static_cast<size_t>(j)];
    }
  }
  x->assign(static_cast<size_t>(k), 0.0);
  for (int j = k - 1; j >= 0; --j) {
    double s = b[static_cast<size_t>(j)];
    for (int c = j + 1; c < k; ++c) {
      s -= a[static_cast<size_t>(j)][static_cast<size_t>(c)] *
           (*x)[static_cast<size_t>(c)];
    }
    (*x)[static_cast<size_t>(j)] =
        s / a[static_cast<size_t>(j)][static_cast<size_t>(j)];
  }
  return -1;
}

}  // namespace

StatusOr<LeastSquaresFit> FitLeastSquares(
    const std::vector<std::vector<double>>& rows,
    const std::vector<double>& targets, const LeastSquaresOptions& options) {
  if (rows.empty()) {
    return Status::InvalidArgument("least squares: no calibration rows");
  }
  const size_t k = rows[0].size();
  if (k == 0) {
    return Status::InvalidArgument("least squares: no feature columns");
  }
  if (targets.size() != rows.size()) {
    return Status::InvalidArgument(
        "least squares: " + std::to_string(rows.size()) + " rows but " +
        std::to_string(targets.size()) + " targets");
  }
  if (!AllFinite(targets)) {
    return Status::InvalidArgument("least squares: non-finite target");
  }
  for (const std::vector<double>& row : rows) {
    if (row.size() != k) {
      return Status::InvalidArgument(
          "least squares: ragged feature matrix (expected " +
          std::to_string(k) + " columns, got " + std::to_string(row.size()) +
          ")");
    }
    if (!AllFinite(row)) {
      return Status::InvalidArgument("least squares: non-finite feature");
    }
  }

  // Iteratively solve over the still-active columns, dropping the first
  // degenerate variable each round (drop mode) until the normal equations
  // are non-singular. The loop runs at most k times.
  std::vector<int> active(k);
  for (size_t j = 0; j < k; ++j) active[j] = static_cast<int>(j);
  LeastSquaresFit fit;
  std::vector<double> solution;
  for (;;) {
    if (active.empty()) {
      return Status::InvalidArgument(
          "least squares: every feature column is degenerate (all-zero "
          "features?)");
    }
    const size_t ka = active.size();
    std::vector<std::vector<double>> a(ka, std::vector<double>(ka, 0.0));
    std::vector<double> b(ka, 0.0);
    for (size_t r = 0; r < rows.size(); ++r) {
      for (size_t i = 0; i < ka; ++i) {
        const double xi = rows[r][static_cast<size_t>(active[i])];
        b[i] += xi * targets[r];
        for (size_t j = i; j < ka; ++j) {
          a[i][j] += xi * rows[r][static_cast<size_t>(active[j])];
        }
      }
    }
    for (size_t i = 0; i < ka; ++i) {
      for (size_t j = 0; j < i; ++j) a[i][j] = a[j][i];
    }
    double max_diag = 0.0;
    for (size_t i = 0; i < ka; ++i) max_diag = std::max(max_diag, a[i][i]);
    const double pivot_floor = options.pivot_epsilon * max_diag;
    const int degenerate = SolveInPlace(a, b, pivot_floor, &solution);
    if (degenerate < 0) break;
    const int column = active[static_cast<size_t>(degenerate)];
    if (!options.drop_degenerate_columns) {
      return Status::FailedPrecondition(
          "least squares: rank-deficient feature matrix (column " +
          std::to_string(column) +
          " is degenerate); enable drop_degenerate_columns to fit without "
          "it");
    }
    fit.dropped_columns.push_back(column);
    active.erase(active.begin() + degenerate);
  }
  std::sort(fit.dropped_columns.begin(), fit.dropped_columns.end());

  fit.coefficients.assign(k, 0.0);
  for (size_t i = 0; i < active.size(); ++i) {
    fit.coefficients[static_cast<size_t>(active[i])] = solution[i];
  }

  double mean = 0.0;
  for (double y : targets) mean += y;
  mean /= static_cast<double>(targets.size());
  double tss = 0.0;
  for (size_t r = 0; r < rows.size(); ++r) {
    double predicted = 0.0;
    for (size_t j = 0; j < k; ++j) {
      predicted += fit.coefficients[j] * rows[r][j];
    }
    const double residual = targets[r] - predicted;
    fit.rss += residual * residual;
    const double centered = targets[r] - mean;
    tss += centered * centered;
  }
  fit.r_squared = tss > 0.0 ? 1.0 - fit.rss / tss : 1.0;
  return fit;
}

CalibratedCostModel::CalibratedCostModel(CalibrationCoefficients coefficients,
                                         int btree_fanout)
    : coefficients_(coefficients), btree_fanout_(btree_fanout) {
  OLAPIDX_CHECK(btree_fanout_ >= 2);
  OLAPIDX_CHECK(std::isfinite(coefficients_.per_row));
  OLAPIDX_CHECK(std::isfinite(coefficients_.per_node));
  OLAPIDX_CHECK(std::isfinite(coefficients_.fixed));
}

double CalibratedCostModel::ScanCost(double view_rows) const {
  return std::max(kMinCost,
                  coefficients_.per_row * view_rows + coefficients_.fixed);
}

double CalibratedCostModel::EstimatedNodeTouches(double view_rows,
                                                 double prefix_rows) const {
  const double touched = view_rows / std::max(1.0, prefix_rows);
  // Descent: one node per level. The loop mirrors how a B+tree of
  // `view_rows` entries grows (engine/btree.h); it is exact integer
  // arithmetic in doubles for any realistic size, hence deterministic.
  double height = 1.0;
  double capacity = static_cast<double>(btree_fanout_);
  while (capacity < view_rows && height < 64.0) {
    capacity *= static_cast<double>(btree_fanout_);
    height += 1.0;
  }
  // Range scan: one leaf per fanout rows retrieved.
  return height + touched / static_cast<double>(btree_fanout_);
}

double CalibratedCostModel::IndexCost(double view_rows,
                                      double prefix_rows) const {
  const double touched = view_rows / std::max(1.0, prefix_rows);
  const double nodes = EstimatedNodeTouches(view_rows, prefix_rows);
  return std::max(kMinCost, coefficients_.per_row * touched +
                                coefficients_.per_node * nodes +
                                coefficients_.fixed);
}

std::string CalibratedCostModel::Serialize() const {
  char buf[256];
  std::string out = "olapidx-costmodel v1\n";
  std::snprintf(buf, sizeof(buf), "fanout %d\n", btree_fanout_);
  out += buf;
  std::snprintf(buf, sizeof(buf), "per_row %a\n", coefficients_.per_row);
  out += buf;
  std::snprintf(buf, sizeof(buf), "per_node %a\n", coefficients_.per_node);
  out += buf;
  std::snprintf(buf, sizeof(buf), "fixed %a\n", coefficients_.fixed);
  out += buf;
  return out;
}

StatusOr<CalibratedCostModel> CalibratedCostModel::Parse(
    const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "olapidx-costmodel v1") {
    return Status::InvalidArgument(
        "cost model file: missing 'olapidx-costmodel v1' header");
  }
  auto parse_double = [](const std::string& token, double* out) {
    const char* begin = token.c_str();
    char* end = nullptr;
    *out = std::strtod(begin, &end);
    return end != begin && *end == '\0' && std::isfinite(*out);
  };
  int fanout = 0;
  CalibrationCoefficients coefficients;
  struct Field {
    const char* key;
    double* value;
  };
  double fanout_value = 0.0;
  const Field fields[] = {
      {"fanout", &fanout_value},
      {"per_row", &coefficients.per_row},
      {"per_node", &coefficients.per_node},
      {"fixed", &coefficients.fixed},
  };
  for (const Field& field : fields) {
    if (!std::getline(in, line)) {
      return Status::InvalidArgument(
          std::string("cost model file: missing '") + field.key + "' line");
    }
    const std::string prefix = std::string(field.key) + " ";
    if (line.rfind(prefix, 0) != 0 ||
        !parse_double(line.substr(prefix.size()), field.value)) {
      return Status::InvalidArgument(
          std::string("cost model file: malformed '") + field.key +
          "' line: " + line);
    }
  }
  fanout = static_cast<int>(fanout_value);
  if (fanout < 2 || static_cast<double>(fanout) != fanout_value) {
    return Status::InvalidArgument(
        "cost model file: fanout must be an integer >= 2");
  }
  return CalibratedCostModel(coefficients, fanout);
}

Status CalibratedCostModel::Save(const std::string& path) const {
  return AtomicWriteFile(path, Serialize());
}

StatusOr<CalibratedCostModel> CalibratedCostModel::Load(
    const std::string& path) {
  StatusOr<std::string> text = ReadFileToString(path);
  if (!text.ok()) {
    return Status::InvalidArgument("cost model file '" + path +
                                   "': " + text.status().message());
  }
  StatusOr<CalibratedCostModel> model = Parse(*text);
  if (!model.ok()) {
    return model.status().WithContext("cost model file '" + path + "'");
  }
  return model;
}

}  // namespace olapidx
