// Analytical view-size estimation (Section 4.2.1): assuming statistically
// independent dimensions, the expected number of distinct group-by
// combinations among w raw rows drawn uniformly from a domain of size D is
//
//     E[|V|] = D · (1 − (1 − 1/D)^w)
//
// This is the "analytical model in [HRU96]" that the paper's Section 6
// experiments use to generate cubes.

#ifndef OLAPIDX_COST_ANALYTICAL_MODEL_H_
#define OLAPIDX_COST_ANALYTICAL_MODEL_H_

#include "cost/view_sizes.h"
#include "lattice/schema.h"

namespace olapidx {

// Expected distinct count for a domain of size `domain` after `rows` draws.
// Handles very large domains without precision loss (via expm1/log1p).
double ExpectedDistinct(double domain, double rows);

// Sizes for every view of the cube over `schema`, given `raw_rows` rows in
// the raw fact table. The base view's size is the expected number of
// distinct full-dimension combinations (≤ raw_rows); every other view
// applies the same formula to its own domain.
ViewSizes AnalyticalViewSizes(const CubeSchema& schema, double raw_rows);

// Sparsity of a cube (Section 6): raw row count divided by the product of
// all dimension cardinalities.
double CubeSparsity(const CubeSchema& schema, double raw_rows);

// Convenience inverse of CubeSparsity: the raw row count that yields the
// requested sparsity for `schema`.
double RawRowsForSparsity(const CubeSchema& schema, double sparsity);

}  // namespace olapidx

#endif  // OLAPIDX_COST_ANALYTICAL_MODEL_H_
