#include "core/r_greedy.h"

#include <algorithm>
#include <queue>

#include "core/selection_state.h"

namespace olapidx {

namespace {

// Tracks the best candidate of the current stage by benefit per unit space.
class BestCandidate {
 public:
  explicit BestCandidate(const SelectionState* state) : state_(state) {}

  void Consider(const Candidate& c, double benefit) {
    if (benefit <= 0.0) return;
    double ratio = benefit / state_->CandidateSpace(c);
    if (!valid_ || ratio > best_ratio_) {
      valid_ = true;
      best_ratio_ = ratio;
      best_benefit_ = benefit;
      best_ = c;
    }
  }

  bool valid() const { return valid_; }
  const Candidate& candidate() const { return best_; }
  double benefit() const { return best_benefit_; }

 private:
  const SelectionState* state_;
  Candidate best_;
  double best_ratio_ = 0.0;
  double best_benefit_ = 0.0;
  bool valid_ = false;
};

// Enumerates subsets of `pool` of size 2..max_size (size-1 subsets are
// evaluated separately by the caller), in lexicographic order, invoking
// `fn(subset)` for each, up to `cap` subsets in total.
template <typename Fn>
void EnumerateSubsets(const std::vector<int32_t>& pool, int max_size,
                      size_t cap, Fn&& fn) {
  std::vector<int32_t> subset;
  size_t emitted = 0;
  auto rec = [&](auto&& self, size_t start) -> void {
    if (emitted >= cap) return;
    if (static_cast<int>(subset.size()) >= 2) {
      ++emitted;
      fn(subset);
      if (emitted >= cap) return;
    }
    if (static_cast<int>(subset.size()) == max_size) return;
    for (size_t i = start; i < pool.size(); ++i) {
      subset.push_back(pool[i]);
      self(self, i + 1);
      subset.pop_back();
      if (emitted >= cap) return;
    }
  };
  rec(rec, 0);
}

// CELF-style lazy 1-greedy: a max-heap of candidates keyed by their last
// computed benefit-per-space; submodularity makes stale keys upper bounds.
SelectionResult LazyOneGreedy(const QueryViewGraph& graph,
                              double space_budget) {
  SelectionState state(&graph);
  SelectionResult result;
  result.initial_cost = state.TotalCost();
  for (uint32_t q = 0; q < graph.num_queries(); ++q) {
    result.total_frequency += graph.query_frequency(q);
  }

  struct Entry {
    double ratio;
    double benefit;
    StructureRef ref;
  };
  // Max-heap by ratio; ties broken by structure id for determinism.
  auto cmp = [](const Entry& a, const Entry& b) {
    if (a.ratio != b.ratio) return a.ratio < b.ratio;
    if (a.ref.view != b.ref.view) return a.ref.view > b.ref.view;
    return a.ref.index > b.ref.index;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> heap(cmp);

  auto push_fresh = [&](StructureRef ref) {
    double b = state.StructureBenefit(ref);
    ++result.candidates_evaluated;
    if (b <= 0.0 && !ref.is_view()) return;  // an index never regains value
    // Zero-benefit views stay out too: with r = 1 a view is only ever
    // selected for its own benefit (this is 1-greedy's known blind spot).
    if (b <= 0.0) return;
    heap.push(Entry{b / graph.structure_space(ref), b, ref});
  };

  for (uint32_t v = 0; v < graph.num_views(); ++v) {
    push_fresh(StructureRef{v, StructureRef::kNoIndex});
  }

  while (state.SpaceUsed() < space_budget && !heap.empty()) {
    Entry top = heap.top();
    heap.pop();
    if (state.Selected(top.ref)) continue;
    double b = state.StructureBenefit(top.ref);
    ++result.candidates_evaluated;
    if (b <= 0.0) continue;  // stale and now worthless; drop
    double ratio = b / graph.structure_space(top.ref);
    // Select only if still at least as good as the best cached bound.
    if (!heap.empty() && ratio < heap.top().ratio) {
      heap.push(Entry{ratio, b, top.ref});
      continue;
    }
    state.ApplyStructure(top.ref);
    result.picks.push_back(top.ref);
    result.pick_benefits.push_back(b);
    if (top.ref.is_view()) {
      for (int32_t k = 0; k < graph.num_indexes(top.ref.view); ++k) {
        push_fresh(StructureRef{top.ref.view, k});
      }
    }
  }

  result.space_used = state.SpaceUsed();
  result.final_cost = state.TotalCost();
  result.total_maintenance = state.TotalMaintenance();
  return result;
}

}  // namespace

SelectionResult RGreedy(const QueryViewGraph& graph, double space_budget,
                        const RGreedyOptions& options) {
  OLAPIDX_CHECK(graph.finalized());
  OLAPIDX_CHECK(options.r >= 1);
  OLAPIDX_CHECK(space_budget >= 0.0);
  if (options.r == 1 && options.lazy_one_greedy) {
    return LazyOneGreedy(graph, space_budget);
  }

  SelectionState state(&graph);
  SelectionResult result;
  result.initial_cost = state.TotalCost();
  for (uint32_t q = 0; q < graph.num_queries(); ++q) {
    result.total_frequency += graph.query_frequency(q);
  }

  while (state.SpaceUsed() < space_budget) {
    BestCandidate best(&state);

    // (a) A not-yet-selected view plus at most r-1 of its indexes.
    for (uint32_t v = 0; v < graph.num_views(); ++v) {
      if (state.ViewSelected(v)) continue;
      Candidate view_only{v, /*add_view=*/true, {}};
      double view_benefit = state.CandidateBenefit(view_only);
      ++result.candidates_evaluated;
      best.Consider(view_only, view_benefit);
      if (options.r < 2) continue;

      // Indexes worth pairing with the view: those that improve at least
      // one query beyond the plain view scan. An index that adds nothing
      // next to the view alone can never add anything inside a larger
      // candidate (a set's offered cost is the min over its members).
      std::vector<int32_t> useful;
      for (int32_t k = 0; k < graph.num_indexes(v); ++k) {
        Candidate with_index{v, /*add_view=*/true, {k}};
        double b = state.CandidateBenefit(with_index);
        ++result.candidates_evaluated;
        best.Consider(with_index, b);
        if (b > view_benefit) useful.push_back(k);
      }
      if (options.r >= 3 && useful.size() >= 2) {
        EnumerateSubsets(useful, options.r - 1,
                         options.max_subsets_per_view,
                         [&](const std::vector<int32_t>& subset) {
                           Candidate c{v, /*add_view=*/true, subset};
                           double b = state.CandidateBenefit(c);
                           ++result.candidates_evaluated;
                           best.Consider(c, b);
                         });
      }
    }

    // (b) A single index whose view was selected in a previous stage.
    for (uint32_t v = 0; v < graph.num_views(); ++v) {
      if (!state.ViewSelected(v)) continue;
      for (int32_t k = 0; k < graph.num_indexes(v); ++k) {
        if (state.IndexSelected(v, k)) continue;
        Candidate c{v, /*add_view=*/false, {k}};
        double b = state.CandidateBenefit(c);
        ++result.candidates_evaluated;
        best.Consider(c, b);
      }
    }

    if (!best.valid()) break;  // Nothing left with positive benefit.
    double stage_benefit = best.benefit();
    const Candidate& c = best.candidate();
    // Record per-structure incremental benefits (distributed equally, as in
    // the proof of Theorem 5.1) so analyses can replay the a_i sequence.
    double per_structure =
        stage_benefit / static_cast<double>(c.NumStructures());
    state.Apply(c);
    if (c.add_view) {
      result.picks.push_back(StructureRef{c.view, StructureRef::kNoIndex});
      result.pick_benefits.push_back(per_structure);
    }
    for (int32_t k : c.indexes) {
      result.picks.push_back(StructureRef{c.view, k});
      result.pick_benefits.push_back(per_structure);
    }
  }

  result.space_used = state.SpaceUsed();
  result.final_cost = state.TotalCost();
  result.total_maintenance = state.TotalMaintenance();
  return result;
}

}  // namespace olapidx
