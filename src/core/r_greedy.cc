#include "core/r_greedy.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <queue>
#include <utility>

#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/selection_metrics.h"
#include "core/selection_state.h"

namespace olapidx {

namespace {

using SteadyClock = std::chrono::steady_clock;

uint64_t ElapsedMicros(SteadyClock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          SteadyClock::now() - since)
          .count());
}

// One view's cached stage evaluation: the best candidate rooted at the
// view under the determinism contract of r_greedy.h, tagged with the
// SelectionState::ViewVersion it was computed at. While the version
// matches the slot is bit-exact; once the view is dirtied it is
// recomputed before the next reduction.
struct ViewSlot {
  static constexpr uint64_t kNeverEvaluated = ~uint64_t{0};

  uint64_t version = kNeverEvaluated;
  bool valid = false;  // has a positive-benefit candidate
  // True when the slot's ratio is a certified upper bound on every
  // candidate of this view at any later state (CELF generalized beyond
  // r = 1): benefits are monotone non-increasing, and every un-enumerated
  // subset reduces to an enumerated one with at least its ratio. False
  // when the enumeration was truncated by max_subsets_per_view or the
  // view's own selection set changed since the evaluation (a selected
  // view's indexes are a different candidate family with smaller spaces).
  bool bound_ok = false;
  double ratio = 0.0;
  double benefit = 0.0;
  Candidate cand;
};

// Per-chunk work counters, merged after each ParallelFor so totals are
// independent of thread count and schedule.
struct ChunkCounters {
  uint64_t evals = 0;
  uint64_t truncated = 0;
};

// Enumerates subsets of `pool` of size 2..max_size (size-1 subsets are
// evaluated separately by the caller), in lexicographic order, invoking
// `fn(subset)` for each, up to `cap` subsets in total. Returns the number
// of subsets emitted.
template <typename Fn>
size_t EnumerateSubsets(const std::vector<int32_t>& pool, int max_size,
                        size_t cap, Fn&& fn) {
  std::vector<int32_t> subset;
  size_t emitted = 0;
  auto rec = [&](auto&& self, size_t start) -> void {
    if (emitted >= cap) return;
    if (static_cast<int>(subset.size()) >= 2) {
      ++emitted;
      fn(subset);
      if (emitted >= cap) return;
    }
    if (static_cast<int>(subset.size()) == max_size) return;
    for (size_t i = start; i < pool.size(); ++i) {
      subset.push_back(pool[i]);
      self(self, i + 1);
      subset.pop_back();
      if (emitted >= cap) return;
    }
  };
  rec(rec, 0);
  return emitted;
}

// Σ_{s=2}^{max_size} C(n, s), saturating at UINT64_MAX — how many subsets
// an uncapped enumeration would visit.
uint64_t TotalSubsetCount(size_t n, int max_size) {
  uint64_t total = 0;
  for (int s = 2; s <= max_size && static_cast<size_t>(s) <= n; ++s) {
    uint64_t c = 1;
    for (uint64_t i = 1; i <= static_cast<uint64_t>(s); ++i) {
      uint64_t num = static_cast<uint64_t>(n) - static_cast<uint64_t>(s) + i;
      if (c > ~uint64_t{0} / num) return ~uint64_t{0};
      c = c * num / i;  // exact: the running product is C(n-s+i, i) * i!/i!
    }
    if (total > ~uint64_t{0} - c) return ~uint64_t{0};
    total += c;
  }
  return total;
}

// Recomputes `slot` for view v against the current state: the best
// candidate rooted at v, with ties broken by enumeration rank (strict >
// keeps the earliest). Runs concurrently across views — reads only const
// state, writes only its own slot and counters.
void EvaluateView(const SelectionState& state, uint32_t v,
                  const RGreedyOptions& options, ViewSlot* slot,
                  ChunkCounters* counters) {
  const QueryViewGraph& graph = state.graph();
  slot->version = state.ViewVersion(v);
  slot->valid = false;
  slot->bound_ok = true;
  slot->ratio = 0.0;
  slot->benefit = 0.0;

  auto consider = [&](const Candidate& c, double benefit) {
    if (benefit <= 0.0) return;
    double ratio = benefit / state.CandidateSpace(c);
    if (!slot->valid || ratio > slot->ratio) {
      slot->valid = true;
      slot->ratio = ratio;
      slot->benefit = benefit;
      slot->cand = c;
    }
  };

  if (!state.ViewSelected(v)) {
    // (a) The view plus at most r-1 of its indexes.
    Candidate view_only{v, /*add_view=*/true, {}};
    double view_benefit = state.CandidateBenefit(view_only);
    ++counters->evals;
    consider(view_only, view_benefit);
    if (options.r < 2) return;

    // Indexes worth pairing with the view: those that improve at least
    // one query beyond the plain view scan. An index that adds nothing
    // next to the view alone can never add anything inside a larger
    // candidate (a set's offered cost is the min over its members).
    std::vector<int32_t> useful;
    for (int32_t k = 0; k < graph.num_indexes(v); ++k) {
      Candidate with_index{v, /*add_view=*/true, {k}};
      double b = state.CandidateBenefit(with_index);
      ++counters->evals;
      consider(with_index, b);
      if (b > view_benefit) useful.push_back(k);
    }
    if (options.r >= 3 && useful.size() >= 2) {
      size_t emitted = EnumerateSubsets(
          useful, options.r - 1, options.max_subsets_per_view,
          [&](const std::vector<int32_t>& subset) {
            Candidate c{v, /*add_view=*/true, subset};
            double b = state.CandidateBenefit(c);
            ++counters->evals;
            consider(c, b);
          });
      if (emitted == options.max_subsets_per_view) {
        uint64_t total = TotalSubsetCount(useful.size(), options.r - 1);
        if (total > emitted) {
          counters->truncated += total - emitted;
          // Un-enumerated subsets beyond the cap are not covered by the
          // slot's ratio, so it is not a certified bound.
          slot->bound_ok = false;
        }
      }
    }
  } else {
    // (b) A single not-yet-selected index of the already-selected view.
    for (int32_t k = 0; k < graph.num_indexes(v); ++k) {
      if (state.IndexSelected(v, k)) continue;
      Candidate c{v, /*add_view=*/false, {k}};
      double b = state.CandidateBenefit(c);
      ++counters->evals;
      consider(c, b);
    }
  }
}

// The eager (r ≥ 1) path: per stage, recompute only the views dirtied
// since their last evaluation — in parallel — then reduce all view slots
// deterministically (ascending view id, strictly-greater ratio wins).
SelectionResult EagerRGreedy(const QueryViewGraph& graph,
                             double space_budget,
                             const RGreedyOptions& options) {
  OLAPIDX_TRACE_SPAN("rgreedy.run");
  SelectionState state(&graph);
  SelectionResult result;
  result.initial_cost = state.TotalCost();
  for (uint32_t q = 0; q < graph.num_queries(); ++q) {
    result.total_frequency += graph.query_frequency(q);
  }
  if (options.resume != nullptr) {
    Status replayed = ReplayPicks(*options.resume, &state, &result);
    if (!replayed.ok()) return SelectionResult::Rejected(replayed);
  }

  std::unique_ptr<ThreadPool> private_pool;
  if (options.num_threads != 0) {
    private_pool = std::make_unique<ThreadPool>(options.num_threads);
  }
  ThreadPool& pool = private_pool ? *private_pool : ThreadPool::Shared();
  const size_t chunks = pool.num_threads();
  result.stats.threads_used = chunks;

  const uint32_t num_views = graph.num_views();
  std::vector<ViewSlot> slots(num_views);
  std::vector<uint32_t> dirty;
  dirty.reserve(num_views);
  std::vector<uint32_t> beamed;    // beam scratch: bounded dirty views
  std::vector<uint32_t> deferred;  // beam-skipped this stage
  std::vector<uint8_t> beam_out(num_views, 0);
  std::vector<ChunkCounters> counters(chunks);
  const auto run_start = SteadyClock::now();
  // Stages executed by *this call*; replayed checkpoint stages don't count
  // against the budget (so resume with the same max_steps makes progress).
  size_t steps_this_call = 0;

  while (state.SpaceUsed() < space_budget) {
    if (steps_this_call >= options.control.max_steps) {
      result.status = Status::ResourceExhausted("stage budget reached");
      result.completed = false;
      break;
    }
    if (options.control.StopRequested()) {
      result.status = options.control.StopStatus();
      result.completed = false;
      break;
    }
    const auto stage_start = SteadyClock::now();
    OLAPIDX_TRACE_SPAN("rgreedy.stage");
    // Candidate evaluations this stage; every loop exit that accounts a
    // stage records wall time and candidate count together so the
    // per-stage vectors stay parallel (RecordRun folds them into the
    // registry histograms in one end-of-run batch).
    uint64_t stage_evals = 0;
    auto end_stage = [&] {
      uint64_t micros = ElapsedMicros(stage_start);
      result.stats.stage_wall_micros.push_back(micros);
      result.stats.stage_candidates.push_back(stage_evals);
    };

    // Pass 1: clean slots are exact; the best clean ratio becomes the
    // lazy-skip threshold for the dirty ones.
    double prune_ratio = 0.0;
    for (uint32_t v = 0; v < num_views; ++v) {
      if (options.memoize && slots[v].version == state.ViewVersion(v)) {
        ++result.stats.cache_hits;
        if (slots[v].valid && slots[v].ratio > prune_ratio) {
          prune_ratio = slots[v].ratio;
        }
      }
    }

    // Pass 2: a dirty view whose certified stale upper bound cannot reach
    // the best clean ratio cannot win this stage, so its re-evaluation is
    // skipped (the slot stays stale and its bound stays valid — benefits
    // are monotone non-increasing). A stale slot with no positive
    // candidate can never regain one while its candidate family is
    // unchanged, so it is skipped regardless of the threshold.
    dirty.clear();
    for (uint32_t v = 0; v < num_views; ++v) {
      if (options.memoize && slots[v].version == state.ViewVersion(v)) {
        continue;
      }
      const ViewSlot& s = slots[v];
      if (options.memoize && s.bound_ok &&
          (!s.valid || s.ratio < prune_ratio)) {
        ++result.stats.bound_prunes;
        continue;
      }
      dirty.push_back(v);
    }

    // Beam cap: of the dirty views with a certified stale bound, only the
    // beam_width with the largest bounds are re-evaluated; the rest are
    // deferred. A deferred slot must not enter the reduction — its stale
    // ratio is an *over*estimate — so it is masked out and accounted in
    // the a-posteriori guarantee instead. Views with no certified bound
    // (first touch, post-pick family change, truncated enumeration) are
    // always evaluated.
    deferred.clear();
    double deferred_bound = 0.0;
    if (options.memoize && options.beam_width > 0 &&
        dirty.size() > options.beam_width) {
      beamed.clear();
      for (uint32_t v : dirty) {
        if (slots[v].bound_ok) beamed.push_back(v);
      }
      if (beamed.size() > options.beam_width) {
        std::sort(beamed.begin(), beamed.end(),
                  [&](uint32_t a, uint32_t b) {
                    if (slots[a].ratio != slots[b].ratio) {
                      return slots[a].ratio > slots[b].ratio;
                    }
                    return a < b;
                  });
        deferred.assign(
            beamed.begin() + static_cast<std::ptrdiff_t>(options.beam_width),
            beamed.end());
        deferred_bound = slots[deferred.front()].ratio;
        for (uint32_t v : deferred) beam_out[v] = 1;
        dirty.erase(std::remove_if(
                        dirty.begin(), dirty.end(),
                        [&](uint32_t v) { return beam_out[v] != 0; }),
                    dirty.end());
      }
    }
    result.stats.cache_misses += dirty.size();

    // Evaluation crosses the pool's fault points and polls the stop inputs
    // between per-view evaluations. A view interrupted mid-evaluation keeps
    // kNeverEvaluated / its stale version, so a later resume re-evaluates
    // it — interruption never corrupts the memoization invariant.
    std::atomic<bool> stop_requested{false};
    auto evaluate_list = [&](const std::vector<uint32_t>& list) -> Status {
      std::fill(counters.begin(), counters.end(), ChunkCounters{});
      Status st = pool.TryParallelFor(
          list.size(), [&](size_t begin, size_t end, size_t chunk) -> Status {
            for (size_t i = begin; i < end; ++i) {
              if (stop_requested.load(std::memory_order_relaxed)) break;
              if (options.control.StopRequested()) {
                stop_requested.store(true, std::memory_order_relaxed);
                break;
              }
              EvaluateView(state, list[i], options, &slots[list[i]],
                           &counters[chunk]);
            }
            return Status::Ok();
          });
      for (const ChunkCounters& c : counters) {
        stage_evals += c.evals;
        result.candidates_truncated += c.truncated;
      }
      return st;
    };
    Status evaluated = evaluate_list(dirty);
    result.candidates_evaluated += stage_evals;
    if (!evaluated.ok()) {
      result.status = evaluated.WithContext("candidate evaluation");
      result.completed = false;
      end_stage();
      break;
    }
    if (stop_requested.load(std::memory_order_relaxed)) {
      result.status = options.control.StopStatus();
      result.completed = false;
      end_stage();
      break;
    }

    // Deterministic reduction over all views (cached and recomputed
    // alike): ascending view id with strictly-greater ratio implements
    // the documented candidate order. Slots skipped by the bound prune
    // are harmless here: their stale ratio is strictly below the best
    // clean ratio, which itself participates, so they can never win.
    // Beam-deferred slots are masked out.
    const ViewSlot* best = nullptr;
    auto reduce = [&] {
      best = nullptr;
      for (uint32_t v = 0; v < num_views; ++v) {
        if (beam_out[v] != 0) continue;
        const ViewSlot& s = slots[v];
        if (s.valid && (best == nullptr || s.ratio > best->ratio)) {
          best = &s;
        }
      }
    };
    reduce();
    if (best == nullptr && !deferred.empty()) {
      // The beam hid every remaining positive candidate: evaluate the
      // deferred set after all, so a beam run never stops before the
      // exact one would.
      for (uint32_t v : deferred) beam_out[v] = 0;
      const uint64_t evals_before = stage_evals;
      Status fallback = evaluate_list(deferred);
      result.stats.cache_misses += deferred.size();
      result.candidates_evaluated += stage_evals - evals_before;
      deferred.clear();
      if (!fallback.ok()) {
        result.status = fallback.WithContext("candidate evaluation");
        result.completed = false;
        end_stage();
        break;
      }
      if (stop_requested.load(std::memory_order_relaxed)) {
        result.status = options.control.StopStatus();
        result.completed = false;
        end_stage();
        break;
      }
      reduce();
    }
    if (best == nullptr) {
      end_stage();
      break;  // Nothing left with positive benefit.
    }
    if (!deferred.empty()) {
      result.beam_skipped += deferred.size();
      result.beam_stage_factor =
          std::min(result.beam_stage_factor,
                   best->ratio / std::max(best->ratio, deferred_bound));
      for (uint32_t v : deferred) beam_out[v] = 0;
    }

    const Candidate c = best->cand;  // copy: Apply dirties the slot
    double stage_benefit = best->benefit;
    // Record per-structure incremental benefits (distributed equally, as
    // in the proof of Theorem 5.1) so analyses can replay the a_i
    // sequence.
    double per_structure =
        stage_benefit / static_cast<double>(c.NumStructures());
    state.Apply(c);
    // The picked view's candidate family changed (view-only/subset
    // candidates give way to single-index ones with smaller spaces), so
    // its stale ratio no longer bounds anything: force re-evaluation.
    slots[c.view].bound_ok = false;
    if (c.add_view) {
      result.picks.push_back(StructureRef{c.view, StructureRef::kNoIndex});
      result.pick_benefits.push_back(per_structure);
    }
    for (int32_t k : c.indexes) {
      result.picks.push_back(StructureRef{c.view, k});
      result.pick_benefits.push_back(per_structure);
    }
    ++result.stats.stages;
    ++steps_this_call;
    end_stage();
  }

  result.stats.total_wall_micros = ElapsedMicros(run_start);
  result.space_used = state.SpaceUsed();
  result.final_cost = state.TotalCost();
  result.total_maintenance = state.TotalMaintenance();
  selection_metrics::RecordRun(result, steps_this_call);
  return result;
}

// CELF-style lazy 1-greedy: a max-heap of candidates keyed by their last
// computed benefit-per-space; submodularity makes stale keys upper bounds.
SelectionResult LazyOneGreedy(const QueryViewGraph& graph,
                              double space_budget,
                              const RGreedyOptions& options) {
  OLAPIDX_TRACE_SPAN("rgreedy.lazy_run");
  SelectionState state(&graph);
  SelectionResult result;
  result.initial_cost = state.TotalCost();
  for (uint32_t q = 0; q < graph.num_queries(); ++q) {
    result.total_frequency += graph.query_frequency(q);
  }
  if (options.resume != nullptr) {
    Status replayed = ReplayPicks(*options.resume, &state, &result);
    if (!replayed.ok()) return SelectionResult::Rejected(replayed);
  }
  const auto run_start = SteadyClock::now();

  struct Entry {
    double ratio;
    double benefit;
    StructureRef ref;
  };
  // Max-heap by ratio; ties broken by structure id for determinism.
  auto cmp = [](const Entry& a, const Entry& b) {
    if (a.ratio != b.ratio) return a.ratio < b.ratio;
    if (a.ref.view != b.ref.view) return a.ref.view > b.ref.view;
    return a.ref.index > b.ref.index;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> heap(cmp);

  auto push_fresh = [&](StructureRef ref) {
    double b = state.StructureBenefit(ref);
    ++result.candidates_evaluated;
    if (b <= 0.0 && !ref.is_view()) return;  // an index never regains value
    // Zero-benefit views stay out too: with r = 1 a view is only ever
    // selected for its own benefit (this is 1-greedy's known blind spot).
    if (b <= 0.0) return;
    heap.push(Entry{b / graph.structure_space(ref), b, ref});
  };

  // Seed the heap from the (possibly replayed) state: unselected views as
  // view candidates, selected views through their unselected indexes —
  // exactly the frontier an uninterrupted run would have open here.
  for (uint32_t v = 0; v < graph.num_views(); ++v) {
    if (!state.ViewSelected(v)) {
      push_fresh(StructureRef{v, StructureRef::kNoIndex});
      continue;
    }
    for (int32_t k = 0; k < graph.num_indexes(v); ++k) {
      if (!state.IndexSelected(v, k)) push_fresh(StructureRef{v, k});
    }
  }

  size_t steps_this_call = 0;
  while (state.SpaceUsed() < space_budget && !heap.empty()) {
    if (steps_this_call >= options.control.max_steps) {
      result.status = Status::ResourceExhausted("stage budget reached");
      result.completed = false;
      break;
    }
    if (options.control.StopRequested()) {
      result.status = options.control.StopStatus();
      result.completed = false;
      break;
    }
    Entry top = heap.top();
    heap.pop();
    if (state.Selected(top.ref)) continue;
    double b = state.StructureBenefit(top.ref);
    ++result.candidates_evaluated;
    if (b <= 0.0) continue;  // stale and now worthless; drop
    double ratio = b / graph.structure_space(top.ref);
    // Select only if still at least as good as the best cached bound.
    if (!heap.empty() && ratio < heap.top().ratio) {
      heap.push(Entry{ratio, b, top.ref});
      continue;
    }
    state.ApplyStructure(top.ref);
    result.picks.push_back(top.ref);
    result.pick_benefits.push_back(b);
    ++result.stats.stages;
    ++steps_this_call;
    if (top.ref.is_view()) {
      for (int32_t k = 0; k < graph.num_indexes(top.ref.view); ++k) {
        push_fresh(StructureRef{top.ref.view, k});
      }
    }
  }

  // The heap *is* the cache here: every evaluation is counted as a miss,
  // and the per-view memoization counters stay 0.
  result.stats.cache_misses = result.candidates_evaluated;
  result.stats.total_wall_micros = ElapsedMicros(run_start);
  result.space_used = state.SpaceUsed();
  result.final_cost = state.TotalCost();
  result.total_maintenance = state.TotalMaintenance();
  selection_metrics::RecordRun(result, steps_this_call);
  return result;
}

}  // namespace

SelectionResult RGreedy(const QueryViewGraph& graph, double space_budget,
                        const RGreedyOptions& options) {
  // Boundary-reachable misuse (CLI flags, checkpoint files) is rejected,
  // not aborted on; OLAPIDX_CHECK below here guards internal invariants
  // only.
  if (!graph.finalized()) {
    return SelectionResult::Rejected(
        Status::FailedPrecondition("query-view graph is not finalized"));
  }
  if (options.r < 1) {
    return SelectionResult::Rejected(Status::InvalidArgument(
        "r must be >= 1, got " + std::to_string(options.r)));
  }
  if (!(space_budget >= 0.0)) {  // rejects negatives and NaN
    return SelectionResult::Rejected(Status::InvalidArgument(
        "space budget must be non-negative and finite"));
  }
  // Per-run registry delta, captured fresh for every call so repeated
  // runs against the same options/state object never accumulate.
  MetricsRunScope scope;
  SelectionResult result =
      options.r == 1 && options.lazy_one_greedy
          ? LazyOneGreedy(graph, space_budget, options)
          : EagerRGreedy(graph, space_budget, options);
  result.metrics = scope.Delta();
  return result;
}

}  // namespace olapidx
