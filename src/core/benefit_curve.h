// BenefitCurve: the cumulative (space, τ) trajectory of a selection — the
// data behind cost-vs-space frontiers (Example 2.1's diminishing-returns
// observation) and behind empirical checks of Theorem 5.1's a_i analysis.

#ifndef OLAPIDX_CORE_BENEFIT_CURVE_H_
#define OLAPIDX_CORE_BENEFIT_CURVE_H_

#include <vector>

#include "core/selection_result.h"

namespace olapidx {

struct BenefitCurvePoint {
  double space = 0.0;  // cumulative space after this pick
  double tau = 0.0;    // τ(G, M) after this pick
  StructureRef pick;
};

// Replays a selection pick-by-pick against the graph and records the
// trajectory. Point 0 is the empty selection (space 0, τ(G, ∅)).
std::vector<BenefitCurvePoint> ComputeBenefitCurve(
    const QueryViewGraph& graph, const SelectionResult& result);

// The smallest cumulative space at which the selection achieves at least
// `fraction` of its final benefit — where the diminishing-returns knee
// sits. `fraction` in (0, 1].
double SpaceForBenefitFraction(
    const std::vector<BenefitCurvePoint>& curve, double fraction);

}  // namespace olapidx

#endif  // OLAPIDX_CORE_BENEFIT_CURVE_H_
