// Instrumentation for cube-graph construction (core/cube_graph.cc), in the
// style of core/selection_metrics.h: the fast builder accumulates plain
// per-shard counters in its hot loops and folds them into the process-wide
// registry once per build, so the enumeration path gains no atomics.
// Everything is a no-op under OLAPIDX_METRICS=OFF.

#ifndef OLAPIDX_CORE_GRAPH_BUILD_METRICS_H_
#define OLAPIDX_CORE_GRAPH_BUILD_METRICS_H_

#include <cstdint>

#include "common/metrics.h"

namespace olapidx::graph_build_metrics {

// One build's exact totals, reduced from the per-shard counters in chunk
// order before this is called.
struct BuildStats {
  uint64_t views = 0;
  uint64_t structures = 0;
  uint64_t queries = 0;
  // Answerable (query, view) pairs — the k = 0 view edges.
  uint64_t view_pairs = 0;
  // Prefix-equivalence classes evaluated (cost-model calls).
  uint64_t prefix_classes = 0;
  // Index edges materialized (cost < scan) and permutations skipped in
  // bulk because their class cost did not beat a scan.
  uint64_t index_edges = 0;
  uint64_t perms_skipped = 0;
  uint64_t enumerate_micros = 0;
  uint64_t finalize_micros = 0;
  uint64_t total_micros = 0;
};

// Kept out of line so the registry machinery (static-init guards, shard
// lookups) never lands inside the builder's enumeration loops.
[[gnu::noinline]] inline void RecordBuild(const BuildStats& stats) {
  OLAPIDX_METRIC_COUNTER(builds, "graph_build.builds");
  OLAPIDX_METRIC_COUNTER(views, "graph_build.views");
  OLAPIDX_METRIC_COUNTER(structures, "graph_build.structures");
  OLAPIDX_METRIC_COUNTER(queries, "graph_build.queries");
  OLAPIDX_METRIC_COUNTER(view_pairs, "graph_build.view_pairs");
  OLAPIDX_METRIC_COUNTER(classes, "graph_build.prefix_classes");
  OLAPIDX_METRIC_COUNTER(index_edges, "graph_build.index_edges");
  OLAPIDX_METRIC_COUNTER(perms_skipped, "graph_build.perms_skipped");
  OLAPIDX_METRIC_HISTOGRAM(enumerate_wall, "graph_build.enumerate_micros");
  OLAPIDX_METRIC_HISTOGRAM(finalize_wall, "graph_build.finalize_micros");
  OLAPIDX_METRIC_HISTOGRAM(build_wall, "graph_build.build_micros");
  builds.Add(1);
  views.Add(stats.views);
  structures.Add(stats.structures);
  queries.Add(stats.queries);
  view_pairs.Add(stats.view_pairs);
  classes.Add(stats.prefix_classes);
  index_edges.Add(stats.index_edges);
  perms_skipped.Add(stats.perms_skipped);
  enumerate_wall.Observe(stats.enumerate_micros);
  finalize_wall.Observe(stats.finalize_micros);
  build_wall.Observe(stats.total_micros);
}

}  // namespace olapidx::graph_build_metrics

#endif  // OLAPIDX_CORE_GRAPH_BUILD_METRICS_H_
