// Instrumentation for cube-graph construction (core/cube_graph.cc), in the
// style of core/selection_metrics.h: the fast builder accumulates plain
// per-shard counters in its hot loops and folds them into the process-wide
// registry once per build, so the enumeration path gains no atomics.
// Everything is a no-op under OLAPIDX_METRICS=OFF.

#ifndef OLAPIDX_CORE_GRAPH_BUILD_METRICS_H_
#define OLAPIDX_CORE_GRAPH_BUILD_METRICS_H_

#include <cstdint>

#include "common/metrics.h"

namespace olapidx::graph_build_metrics {

// One build's exact totals, reduced from the per-shard counters in chunk
// order before this is called.
struct BuildStats {
  uint64_t views = 0;
  uint64_t structures = 0;
  uint64_t queries = 0;
  // Answerable (query, view) pairs — the k = 0 view edges.
  uint64_t view_pairs = 0;
  // Prefix-equivalence classes evaluated (cost-model calls).
  uint64_t prefix_classes = 0;
  // Index edges materialized (cost < scan) and permutations skipped in
  // bulk because their class cost did not beat a scan.
  uint64_t index_edges = 0;
  uint64_t perms_skipped = 0;
  uint64_t enumerate_micros = 0;
  uint64_t finalize_micros = 0;
  uint64_t total_micros = 0;
  // Allocation accounting (not RSS): bytes of EdgeRuns emitted across all
  // shards (buffered at once in buffered mode, total streamed in streaming
  // mode), bytes of the finalized per-view cost tables, Finalize()'s
  // scratch high-water (class-id maps, query stamps, transient prototype
  // expansion), the sum of the shards' spill-buffer high-waters (streaming
  // mode only), and the modeled peak. Buffered: Finalize() holds the
  // counting-sorted run copy alongside either the draining shard batches
  // or the growing cost tables + scratch, whichever is larger. Streaming:
  // the sink's tracked high-water plus the shard windows.
  uint64_t edge_run_bytes = 0;
  uint64_t cost_table_bytes = 0;
  uint64_t finalize_scratch_bytes = 0;
  uint64_t sink_shard_bytes = 0;
  uint64_t peak_bytes = 0;
};

// Kept out of line so the registry machinery (static-init guards, shard
// lookups) never lands inside the builder's enumeration loops.
[[gnu::noinline]] inline void RecordBuild(const BuildStats& stats) {
  OLAPIDX_METRIC_COUNTER(builds, "graph_build.builds");
  OLAPIDX_METRIC_COUNTER(views, "graph_build.views");
  OLAPIDX_METRIC_COUNTER(structures, "graph_build.structures");
  OLAPIDX_METRIC_COUNTER(queries, "graph_build.queries");
  OLAPIDX_METRIC_COUNTER(view_pairs, "graph_build.view_pairs");
  OLAPIDX_METRIC_COUNTER(classes, "graph_build.prefix_classes");
  OLAPIDX_METRIC_COUNTER(index_edges, "graph_build.index_edges");
  OLAPIDX_METRIC_COUNTER(perms_skipped, "graph_build.perms_skipped");
  OLAPIDX_METRIC_HISTOGRAM(enumerate_wall, "graph_build.enumerate_micros");
  OLAPIDX_METRIC_HISTOGRAM(finalize_wall, "graph_build.finalize_micros");
  OLAPIDX_METRIC_HISTOGRAM(build_wall, "graph_build.build_micros");
  OLAPIDX_METRIC_GAUGE(peak_bytes, "graph_build.peak_bytes");
  builds.Add(1);
  views.Add(stats.views);
  structures.Add(stats.structures);
  queries.Add(stats.queries);
  view_pairs.Add(stats.view_pairs);
  classes.Add(stats.prefix_classes);
  index_edges.Add(stats.index_edges);
  perms_skipped.Add(stats.perms_skipped);
  enumerate_wall.Observe(stats.enumerate_micros);
  finalize_wall.Observe(stats.finalize_micros);
  build_wall.Observe(stats.total_micros);
  // Gauge (not a counter): the latest build's modeled peak, so a dense and
  // a sparse build of the same instance can be compared by reading it
  // after each.
  peak_bytes.Set(static_cast<int64_t>(stats.peak_bytes));
}

// One sparse build's pruning totals (core/pruning_policy.h consumers:
// the flat and hierarchical sparse builders).
struct SparseStats {
  uint64_t workload_queries = 0;
  uint64_t retained_queries = 0;
  // Retained frequency mass in permille of the workload total (gauges are
  // integral).
  uint64_t retained_mass_permille = 0;
  uint64_t retained_views = 0;
  // Superset-cone views the max_views cap excluded (0 when the cap did
  // not bind; a lower bound when the post-cap sweep was truncated).
  uint64_t views_dropped = 0;
  // Views whose index family was derived from the workload (too many
  // attributes for full fat-index enumeration) vs full fat families.
  uint64_t candidate_views = 0;
  uint64_t candidate_indexes = 0;
};

[[gnu::noinline]] inline void RecordSparseBuild(const SparseStats& stats) {
  OLAPIDX_METRIC_COUNTER(builds, "graph_build.sparse.builds");
  OLAPIDX_METRIC_COUNTER(workload_q, "graph_build.sparse.workload_queries");
  OLAPIDX_METRIC_COUNTER(retained_q, "graph_build.sparse.retained_queries");
  OLAPIDX_METRIC_COUNTER(dropped_q, "graph_build.sparse.dropped_queries");
  OLAPIDX_METRIC_COUNTER(retained_v, "graph_build.sparse.retained_views");
  OLAPIDX_METRIC_COUNTER(dropped_v, "graph_build.sparse.views_dropped");
  OLAPIDX_METRIC_COUNTER(candidate_v, "graph_build.sparse.candidate_views");
  OLAPIDX_METRIC_COUNTER(candidate_i, "graph_build.sparse.candidate_indexes");
  OLAPIDX_METRIC_GAUGE(mass, "graph_build.sparse.retained_mass_permille");
  builds.Add(1);
  workload_q.Add(stats.workload_queries);
  retained_q.Add(stats.retained_queries);
  dropped_q.Add(stats.workload_queries - stats.retained_queries);
  retained_v.Add(stats.retained_views);
  dropped_v.Add(stats.views_dropped);
  candidate_v.Add(stats.candidate_views);
  candidate_i.Add(stats.candidate_indexes);
  mass.Set(static_cast<int64_t>(stats.retained_mass_permille));
}

}  // namespace olapidx::graph_build_metrics

#endif  // OLAPIDX_CORE_GRAPH_BUILD_METRICS_H_
