#include "core/sparse_cube_graph.h"

#include <algorithm>
#include <bit>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "core/lattice_graph_builder.h"
#include "core/pruning_policy.h"
#include "lattice/cube_lattice.h"
#include "lattice/index_key.h"

namespace olapidx {

namespace {

// The pruned-lattice LatticeProvider: view ids are dense in the *retained*
// mask set (ascending mask order, so the base view is the last id when
// nothing is pruned), answering views are resolved through a mask→id
// inverse, and wide views carry workload-derived candidate keys instead of
// the full m! fat family. Cost arithmetic deliberately mirrors
// CubeLatticeProvider division for division: every cost is
// size_by_mask[view] / size_by_mask[prefix] with the same hoisted doubles,
// which is what makes the unpruned sparse build bit-identical to the dense
// one.
struct SparseLatticeProvider {
  const CubeSchema* schema;
  const Workload* workload;  // the *retained* workload
  const SparseCubeGraphOptions* options;
  const CubeLattice* lattice;
  const std::vector<uint32_t>* view_masks;       // sparse id -> mask
  const std::vector<int32_t>* id_of_mask;        // mask -> sparse id or -1
  const std::vector<double>* size_by_mask;       // 2^n view sizes
  // Sparse id -> candidate keys; empty for views within max_fat_dim
  // (those enumerate the fat family on the fly, exactly like the dense
  // provider).
  const std::vector<std::vector<IndexKey>>* candidate_keys;
  uint32_t base_id = 0;
  CubeGraph* out = nullptr;

  struct Ctx {
    const SliceQuery* query = nullptr;
    uint32_t sel = 0;
    AttributeSet full;
  };

  bool IsFat(uint32_t mask) const {
    return std::popcount(mask) <= options->max_fat_dim;
  }

  uint32_t num_views() const {
    return static_cast<uint32_t>(view_masks->size());
  }
  uint32_t BaseView() const { return base_id; }
  double ViewSizeOf(uint32_t v) const {
    return (*size_by_mask)[(*view_masks)[v]];
  }

  void InitGraph(QueryViewGraph& g) const {
    g.SetNameDictionary(schema->names());
    if (options->compress_cost_columns) g.SetCompressedCostColumns();
  }

  void AddStructures(QueryViewGraph& g, uint32_t v, double size,
                     double maintenance) const {
    const uint32_t mask = (*view_masks)[v];
    AttributeSet attrs = AttributeSet::FromMask(mask);
    uint32_t gv = g.AddView(attrs.ToString(schema->names()), size);
    OLAPIDX_CHECK(gv == v);
    out->view_attrs.push_back(attrs);
    if (maintenance > 0.0) g.SetViewMaintenance(gv, maintenance);
    std::vector<IndexKey> keys = IsFat(mask) ? lattice->FatIndexes(mask)
                                             : (*candidate_keys)[v];
    g.AddIndexes(gv, keys, size, maintenance);
    out->index_keys.push_back(std::move(keys));
  }

  size_t num_queries() const { return workload->queries().size(); }

  void AddQuery(QueryViewGraph& g, size_t qi, double default_cost) const {
    const WeightedQuery& wq = workload->queries()[qi];
    g.AddQuery(wq.query.ToString(schema->names()), default_cost,
               wq.frequency);
    out->queries.push_back(wq.query);
  }

  Ctx MakeQueryContext() const {
    Ctx ctx;
    ctx.full = AttributeSet::Full(schema->num_dimensions());
    return ctx;
  }

  void BeginQuery(Ctx& ctx, size_t qi) const {
    ctx.query = &workload->queries()[qi].query;
    ctx.sel = ctx.query->selection().mask();
  }

  template <typename Visit>
  void ForEachAnsweringView(Ctx& ctx, Visit&& visit) const {
    const AttributeSet need = ctx.query->AllAttributes();
    const int free_bits = ctx.full.Minus(need).size();
    // Both branches emit ascending sparse ids (view_masks is sorted);
    // pick the cheaper enumeration. Wide queries have few supersets, so
    // the submask walk wins; narrow queries fall back to one subset test
    // per retained view.
    if ((uint64_t{1} << free_bits) <= view_masks->size()) {
      for (AttributeSet cset : need.SupersetsWithin(ctx.full)) {
        const int32_t id = (*id_of_mask)[cset.mask()];
        if (id >= 0) visit(static_cast<uint32_t>(id));
      }
    } else {
      const uint32_t need_mask = need.mask();
      for (uint32_t v = 0; v < view_masks->size(); ++v) {
        if ((need_mask & ~(*view_masks)[v]) == 0) visit(v);
      }
    }
  }

  uint32_t IndexColumnClass(const Ctx& ctx, uint32_t v) const {
    const uint32_t mask = (*view_masks)[v];
    if (mask == 0) return 0;  // the apex view has no indexes
    if (!IsFat(mask) && (*candidate_keys)[v].empty()) return 0;
    // As in the dense provider: a query's index costs from this view
    // depend only on selection ∩ view (every key is a subset of the view's
    // attributes), so queries agreeing on the intersection share columns.
    return (ctx.sel & mask) + 1;
  }

  template <typename Emit>
  void ForEachIndexCostClass(const Ctx& ctx, uint32_t v,
                             const double* /*view_size*/, Emit&& emit) const {
    const uint32_t mask = (*view_masks)[v];
    const double* sz = size_by_mask->data();
    if (IsFat(mask)) {
      const int m = std::popcount(mask);
      WalkPrefixClasses(mask, m, m, ctx.sel, 0,
                        [&](int64_t rb, int64_t re, uint32_t prefix) {
                          emit(rb, re, sz[prefix]);
                        });
      return;
    }
    const std::vector<IndexKey>& keys = (*candidate_keys)[v];
    for (size_t k = 0; k < keys.size(); ++k) {
      const uint32_t prefix =
          keys[k].LongestSelectionPrefix(ctx.query->selection()).mask();
      emit(static_cast<int64_t>(k), static_cast<int64_t>(k) + 1,
           sz[prefix]);
    }
  }
};

}  // namespace

StatusOr<SparseCubeGraph> TryBuildSparseCubeGraph(
    const CubeSchema& schema, const ViewSizes& sizes,
    const Workload& workload, const SparseCubeGraphOptions& options) {
  OLAPIDX_CHECK(sizes.num_dimensions() == schema.num_dimensions());
  OLAPIDX_CHECK(sizes.Complete());
  const int n = schema.num_dimensions();
  if (n > kMaxDimensions) {
    return Status::InvalidArgument(
        "sparse cube graphs support at most " +
        std::to_string(kMaxDimensions) + " dimensions (got n = " +
        std::to_string(n) + ")");
  }
  if (options.max_fat_dim < 0 || options.max_fat_dim > 8) {
    return Status::InvalidArgument(
        "max_fat_dim must be in [0, 8] (got " +
        std::to_string(options.max_fat_dim) + ")");
  }
  if (!(options.query_mass > 0.0) || options.query_mass > 1.0) {
    return Status::InvalidArgument("query_mass must be in (0, 1]");
  }
  if (options.raw_scan_penalty < 1.0) {
    return Status::InvalidArgument("raw_scan_penalty must be >= 1");
  }

  SparseCubeGraph result;
  SparseBuildStats& stats = result.stats;
  stats.workload_queries = workload.size();
  stats.total_mass = workload.TotalFrequency();

  // --- 1. Query pruning (policy layer): hottest-first order, mass
  // threshold, top-k cap.
  std::vector<double> frequency;
  frequency.reserve(workload.size());
  for (const WeightedQuery& wq : workload.queries()) {
    frequency.push_back(wq.frequency);
  }
  QueryPruneResult pruned = PruneQueriesByMass(
      frequency, options.top_queries, options.query_mass);
  Workload retained;
  for (uint32_t qi : pruned.retained) {
    retained.Add(workload[qi].query, workload[qi].frequency);
  }
  stats.retained_mass = pruned.retained_mass;
  stats.dropped_mass = stats.total_mass - stats.retained_mass;
  stats.retained_queries = retained.size();

  // --- 2. View pruning (policy layer): the base view plus every retained
  // query's superset cone, hottest queries first so the soft cap favors
  // the hot region of the lattice. Minimal views (A ∪ B) are exempt from
  // the cap — without them a query's own smallest view would be missing
  // while *larger* ones survive.
  const AttributeSet full = AttributeSet::Full(n);
  std::vector<uint32_t> hot_order(retained.size());
  std::iota(hot_order.begin(), hot_order.end(), 0u);
  std::stable_sort(hot_order.begin(), hot_order.end(),
                   [&](uint32_t a, uint32_t b) {
                     return retained[a].frequency > retained[b].frequency;
                   });
  ViewRetentionResult retention = RetainSupersetViews(
      uint64_t{1} << n, full.mask(), hot_order, options.max_views,
      [&](uint32_t qi) {
        return retained[qi].query.AllAttributes().mask();
      },
      [&](uint32_t qi, auto&& visit) {
        for (AttributeSet cset :
             retained[qi].query.AllAttributes().SupersetsWithin(full)) {
          if (!visit(cset.mask())) break;
        }
      });
  std::vector<uint32_t> view_masks(retention.view_ids.begin(),
                                   retention.view_ids.end());
  const std::vector<int32_t>& id_of_mask = retention.id_of;
  stats.retained_views = view_masks.size();
  stats.view_cap_hit = retention.cap_hit;
  stats.views_dropped = retention.views_dropped;
  stats.views_dropped_truncated = retention.views_dropped_truncated;
  const uint32_t base_id =
      static_cast<uint32_t>(id_of_mask[full.mask()]);

  // --- 3. Index families for wide views (policy layer): one fat key per
  // distinct selection ∩ view over the retained answerable queries,
  // selection attributes leading (ascending), remaining view attributes
  // trailing (ascending). Such a key serves its whole class at the best
  // possible prefix; keys from different classes may collide, so dedupe
  // the final sequences.
  CubeLattice lattice(schema);
  std::vector<std::vector<IndexKey>> candidate_keys(view_masks.size());
  std::vector<std::pair<uint32_t, uint32_t>> query_masks;  // (A∪B, B)
  query_masks.reserve(retained.size());
  for (const WeightedQuery& wq : retained.queries()) {
    query_masks.emplace_back(wq.query.AllAttributes().mask(),
                             wq.query.selection().mask());
  }
  for (uint32_t v = 0; v < view_masks.size(); ++v) {
    const uint32_t mask = view_masks[v];
    if (std::popcount(mask) <= options.max_fat_dim) {
      ++stats.fat_views;
      continue;
    }
    ++stats.candidate_views;
    const std::vector<uint32_t> classes = CollectCandidateClasses(
        query_masks.size(), [&](size_t q) -> uint32_t {
          const auto& [need, sel] = query_masks[q];
          if ((need & ~mask) != 0) return 0;  // not answerable here
          return sel & mask;
        });
    std::vector<IndexKey>& keys = candidate_keys[v];
    keys.reserve(classes.size());
    for (uint32_t p : classes) {
      keys.emplace_back(CandidateKeyOrder(p, mask));
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    stats.candidate_indexes += keys.size();
  }

  // --- 4. Sizes hoisted per mask so every cost division uses the same
  // doubles as the dense builder.
  std::vector<double> size_by_mask(size_t{1} << n);
  for (uint32_t mask = 0; mask < size_by_mask.size(); ++mask) {
    size_by_mask[mask] = sizes.SizeOf(AttributeSet::FromMask(mask));
  }

  CubeGraph& out = result.cube;
  out.view_attrs.reserve(view_masks.size());
  out.index_keys.reserve(view_masks.size());
  SparseLatticeProvider provider{&schema,       &retained,
                                 &options,      &lattice,
                                 &view_masks,   &id_of_mask,
                                 &size_by_mask, &candidate_keys,
                                 base_id,       &out};
  LatticeGraphOptions build;
  build.default_query_cost = options.default_query_cost;
  build.raw_scan_penalty = options.raw_scan_penalty;
  build.maintenance_per_row = options.maintenance_per_row;
  build.num_threads = options.num_threads;
  build.cost_model = options.cost_model.get();
  build.sink_window_bytes = options.sink_window_bytes;
  BuildLatticeGraph(provider, build, out.graph, &stats.build);

  graph_build_metrics::SparseStats metric;
  metric.workload_queries = stats.workload_queries;
  metric.retained_queries = stats.retained_queries;
  metric.retained_mass_permille =
      stats.total_mass > 0.0
          ? static_cast<uint64_t>(1000.0 * stats.retained_mass /
                                  stats.total_mass)
          : 1000;
  metric.retained_views = stats.retained_views;
  metric.views_dropped = stats.views_dropped;
  metric.candidate_views = stats.candidate_views;
  metric.candidate_indexes = stats.candidate_indexes;
  graph_build_metrics::RecordSparseBuild(metric);
  return result;
}

}  // namespace olapidx
