// TryBuildSparseCubeGraph: the workload-pruned construction path that
// breaks the n ≤ 8 wall of the dense cube graph (core/cube_graph.h).
//
// The dense builder enumerates all 2^n views, each with all m! fat indexes,
// and expands a dense cost column per (view, query) — at n = 8 that is
// already a multi-GB table, and n = 12–20 is out of reach. This path scales
// to kMaxDimensions (20) by pruning on three axes before any edge exists:
//
//   1. Queries: keep only the queries carrying non-negligible frequency
//      mass (a mass threshold and/or a top-k cap over the explicit
//      workload). With a Zipf-skewed workload the dropped tail contributes
//      almost nothing to τ(G, M).
//   2. Views: keep only views reachable as supersets of some retained
//      query's A ∪ B (plus the base view, which anchors default costs) —
//      no other view can answer any retained query, so the dense lattice's
//      remaining 2^n − |reachable| views are pure waste. A soft cap bounds
//      the blow-up for queries with few mentioned attributes.
//   3. Indexes: views with at most max_fat_dim attributes get the paper's
//      full fat-index family (m! permutations); wider views get a
//      workload-derived candidate family instead — one fat key per
//      distinct selection ∩ view over the retained answerable queries,
//      with the selection attributes leading. Every retained query still
//      finds a key whose prefix covers its whole usable selection, so the
//      candidate family preserves exactly the per-query best costs the
//      full m! family would offer, at O(|W|) keys per view.
//
// The graph is stored with compressed cost columns (one prototype column
// per column class; see QueryViewGraph::SetCompressedCostColumns), so the
// per-view tables stay proportional to the number of *distinct* columns,
// not queries × indexes.
//
// When nothing is pruned — full query set, query_mass = 1, no caps, and
// every view within max_fat_dim — the result is bit-identical to
// TryBuildCubeGraph (the equivalence test pins this).

#ifndef OLAPIDX_CORE_SPARSE_CUBE_GRAPH_H_
#define OLAPIDX_CORE_SPARSE_CUBE_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/status.h"
#include "core/cube_graph.h"
#include "core/pruning_policy.h"
#include "cost/cost_model.h"
#include "cost/view_sizes.h"
#include "lattice/schema.h"
#include "workload/workload.h"

namespace olapidx {

struct SparseCubeGraphOptions {
  // Keep at most this many queries, highest frequency first (ties broken
  // by workload order). 0 = no cap.
  size_t top_queries = 0;

  // Keep the smallest highest-frequency prefix of the workload whose
  // cumulative frequency reaches this fraction of the total. 1.0 keeps
  // every query (including zero-frequency ones).
  double query_mass = 1.0;

  // Soft cap on retained views: the base view and each retained query's
  // minimal view (A ∪ B) are always kept; further supersets are added —
  // hottest queries first — until the cap.
  size_t max_views = 1u << 16;

  // Views with more attributes than this get the workload-derived
  // candidate index family instead of all m! fat indexes. Must be ≤ 8
  // (the fat-enumeration limit).
  int max_fat_dim = 6;

  // Store compressed (prototype) cost columns instead of dense k-major
  // tables. Off only for A/B comparisons; the values are identical.
  bool compress_cost_columns = true;

  // Streaming spill window per enumeration shard (bytes of buffered edge
  // runs); see LatticeGraphOptions::sink_window_bytes. The default streams
  // — peak build memory is bounded by the finished compressed tables plus
  // a few hundred KiB per shard instead of scaling with retained-view ×
  // class count. 0 buffers everything (the historical path); both settings
  // build bit-identical graphs.
  size_t sink_window_bytes = size_t{1} << 18;

  // Same meaning as in CubeGraphOptions.
  double default_query_cost = 0.0;
  double raw_scan_penalty = 1.0;
  double maintenance_per_row = 0.0;
  size_t num_threads = 0;
  std::shared_ptr<const CostModel> cost_model = nullptr;
};

// SparseBuildStats lives in core/pruning_policy.h (shared with the
// hierarchical sparse builder).

struct SparseCubeGraph {
  // Reuses the dense result type so the advisor, checkpoints, and plan
  // mapping work unchanged; view ids are dense in the *retained* view set
  // (ascending mask order), not lattice masks.
  CubeGraph cube;
  SparseBuildStats stats;
};

StatusOr<SparseCubeGraph> TryBuildSparseCubeGraph(
    const CubeSchema& schema, const ViewSizes& sizes,
    const Workload& workload, const SparseCubeGraphOptions& options = {});

}  // namespace olapidx

#endif  // OLAPIDX_CORE_SPARSE_CUBE_GRAPH_H_
