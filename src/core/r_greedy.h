// The r-greedy algorithm family (Algorithm 5.1).
//
// Each stage selects the benefit-per-unit-space-maximal candidate among
//   (a) a not-yet-selected view together with at most r-1 of its indexes, or
//   (b) a single not-yet-selected index of an already-selected view,
// stopping when the budget is reached or no candidate has positive benefit.
// Stages may overshoot the budget (Theorem 5.1: by at most r-1 unit-space
// structures); callers compare against the optimum for the space *used*.
//
// Performance guarantee: 1 − e^−((r−1)/r) of the optimal benefit
// (0 for r = 1 — 1-greedy can be arbitrarily bad; 0.39 / 0.49 / 0.53 for
// r = 2 / 3 / 4; → 1 − 1/e ≈ 0.63 as r → ∞). Running time O(k·m^r).
//
// Determinism contract. Each stage picks the maximum under this strict
// total order on positive-benefit candidates (best first):
//   1. higher benefit-per-unit-space ratio;
//   2. lower view id;
//   3. within one view, earlier enumeration rank: the bare view, then
//      view+single-index in index order k = 0, 1, ..., then view+subset in
//      lexicographic order over the view's useful indexes (for a selected
//      view: single indexes in index order).
// The same order is used as the parallel reduction's comparator, so runs
// are bit-identical for every thread count, and identical with and
// without memoization (a clean cached benefit is bit-exact, see
// SelectionState::ViewVersion).

#ifndef OLAPIDX_CORE_R_GREEDY_H_
#define OLAPIDX_CORE_R_GREEDY_H_

#include <cstddef>
#include <cstdint>

#include "common/deadline.h"
#include "core/selection_result.h"

namespace olapidx {

struct RGreedyOptions {
  int r = 1;
  // Safety valve for very index-rich views (a 6-dimensional base view has
  // 720 fat indexes, hence C(720, 2) ≈ 2.6e5 index pairs per stage at
  // r = 3): at most this many index subsets are enumerated per view per
  // stage, in lexicographic order of the view's *useful* indexes (those
  // whose solo benefit next to the view is positive). SIZE_MAX = exact.
  // Subsets skipped by the cap are counted in
  // SelectionResult::candidates_truncated.
  size_t max_subsets_per_view = SIZE_MAX;

  // Worker threads for candidate evaluation: 0 = the process-wide shared
  // pool (hardware concurrency, overridable via OLAPIDX_THREADS), 1 =
  // serial, n ≥ 2 = a private pool of n threads for this call. Picks are
  // bit-identical for every value (see the determinism contract above).
  size_t num_threads = 0;

  // Reuse each view's cached stage evaluation while the view is clean —
  // i.e. no pick since the evaluation improved a query adjacent to the
  // view (dirty-set invalidation, SelectionState::ViewVersion). Turns
  // stages after the first from O(m) candidate evaluations into
  // O(affected). Exact: picks are bit-identical with the flag off.
  bool memoize = true;

  // Interruption inputs (deadline, cancel token, stage budget). Polled at
  // every stage boundary and between per-view evaluations, so an expiry
  // mid-stage discards only that stage's partial evaluation. The returned
  // result is the anytime best-so-far prefix: completed == false, status
  // an interruption code, picks a valid monotone design equal to the
  // uninterrupted run's first stats.stages stages (determinism contract).
  RunControl control = {};

  // Warm start: replay this pick prefix (typically parsed from an
  // "olapidx-checkpoint v1" artifact) before the first stage. With the
  // same graph, budget, and options, checkpoint picks + continuation picks
  // reproduce the uninterrupted pick sequence bit-exactly. Not owned; must
  // outlive the call. Rejected with InvalidArgument if inconsistent with
  // the graph.
  const ResumePicks* resume = nullptr;

  // Beam cap on per-stage re-evaluations (effective with memoize on and
  // the eager path; the lazy 1-greedy heap is already beam-like). Each
  // stage always re-evaluates dirty views with no certified stale bound,
  // but of the bounded ones only the beam_width with the largest stale
  // bounds; the rest are deferred — excluded from the stage's reduction
  // (their stale ratios overestimate) and accounted in
  // SelectionResult::beam_skipped / beam_stage_factor. If the beam hides
  // every positive candidate, the deferred set is evaluated after all, so
  // a beam run never stops before the exact one would. 0 = unlimited —
  // bit-identical to exact greedy.
  size_t beam_width = 0;

  // r = 1 only: use CELF-style lazy evaluation (Leskovec et al., 2007).
  // Because single-structure benefits are monotone non-increasing as the
  // selection grows, a stale cached benefit is an upper bound, so popping
  // a max-heap and re-evaluating until the top stays on top selects the
  // same-benefit structure as the eager scan while evaluating far fewer
  // candidates. Tie-breaking between equal ratios may differ from the
  // eager order; benefits are identical.
  bool lazy_one_greedy = false;
};

SelectionResult RGreedy(const QueryViewGraph& graph, double space_budget,
                        const RGreedyOptions& options);

// Convenience: 1-greedy (the "simplest algorithm" of Example 2.1).
inline SelectionResult OneGreedy(const QueryViewGraph& graph,
                                 double space_budget) {
  return RGreedy(graph, space_budget, RGreedyOptions{.r = 1});
}

}  // namespace olapidx

#endif  // OLAPIDX_CORE_R_GREEDY_H_
