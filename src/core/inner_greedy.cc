#include "core/inner_greedy.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>

#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/selection_metrics.h"
#include "core/selection_state.h"

namespace olapidx {

namespace {

using SteadyClock = std::chrono::steady_clock;

uint64_t ElapsedMicros(SteadyClock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          SteadyClock::now() - since)
          .count());
}

// One view's cached stage evaluation: for an unselected view the
// ratio-maximal prefix of its greedy index growth, for a selected view
// its best single unselected index. Tagged with the ViewVersion it was
// computed at (bit-exact while the version matches).
struct ViewSlot {
  static constexpr uint64_t kNeverEvaluated = ~uint64_t{0};

  uint64_t version = kNeverEvaluated;
  bool valid = false;  // has a positive-benefit candidate
  // Certified upper bound on the ratio of ANY candidate rooted at this
  // view at any later state, valid while bound_ok. The grown bundle's own
  // ratio is not such a bound (re-growth can take a different order), but
  //   max(view ratio, max_k marginal_k(view alone) / space_k)
  // is: benefit(bundle) <= benefit(view) + sum of first-step marginals
  // (submodularity), each term is monotone non-increasing in M, and a
  // ratio of sums is at most the max of the per-term ratios (mediant
  // inequality). For a selected view the candidates are fixed single
  // indexes and the best ratio itself is the bound.
  double bound = 0.0;
  bool bound_ok = false;
  Candidate candidate;
  double benefit = 0.0;
  double space = 0.0;

  double ratio() const { return benefit / space; }
};

// Grows IG = {view v} U indexes greedily (largest incremental benefit
// first) while S(IG) < budget, and stores the prefix with maximal benefit
// per unit space with respect to the current state into `slot`.
void GrowBundle(const QueryViewGraph& graph, const SelectionState& state,
                uint32_t v, double space_budget, ViewSlot* slot,
                uint64_t* evals) {
  const std::vector<uint32_t>& queries = graph.ViewQueries(v);
  const size_t nq = queries.size();

  // offered[pos]: cheapest cost IG currently offers for queries[pos].
  std::vector<double> offered(nq);
  double benefit = 0.0;
  for (size_t pos = 0; pos < nq; ++pos) {
    offered[pos] = graph.ViewCostAt(v, pos);
    double cur = state.QueryBestCost(queries[pos]);
    if (offered[pos] < cur) {
      benefit += graph.query_frequency(queries[pos]) * (cur - offered[pos]);
    }
  }
  benefit -= graph.structure_maintenance(
      StructureRef{v, StructureRef::kNoIndex});
  ++*evals;

  double space = graph.view_space(v);
  std::vector<int32_t> order;  // growth order of appended indexes

  slot->candidate = Candidate{v, /*add_view=*/true, {}};
  slot->benefit = benefit;
  slot->space = space;
  slot->bound = benefit / space;

  std::vector<int32_t> remaining;
  for (int32_t k = 0; k < graph.num_indexes(v); ++k) remaining.push_back(k);

  bool first_growth_step = true;
  while (space < space_budget && !remaining.empty()) {
    // Find the index with the largest incremental benefit w.r.t. M ∪ IG.
    double best_inc = 0.0;
    size_t best_at = 0;
    bool found = false;
    for (size_t i = 0; i < remaining.size();) {
      int32_t k = remaining[i];
      double inc = 0.0;
      for (size_t pos = 0; pos < nq; ++pos) {
        double c = graph.IndexCostAt(v, k, pos);
        if (c >= offered[pos]) continue;
        double cur = state.QueryBestCost(queries[pos]);
        double old_red = std::max(0.0, cur - offered[pos]);
        double new_red = std::max(0.0, cur - c);
        inc += graph.query_frequency(queries[pos]) * (new_red - old_red);
      }
      inc -= graph.structure_maintenance(StructureRef{v, k});
      ++*evals;
      if (first_growth_step && inc > 0.0) {
        // First-step marginals (w.r.t. the view alone) feed the certified
        // ratio bound documented on ViewSlot.
        slot->bound =
            std::max(slot->bound, inc / graph.index_space(v, k));
      }
      if (inc <= 0.0) {
        // Offered costs only decrease as IG grows, so a zero-increment
        // index stays at zero for the rest of this growth: drop it.
        // (best_at always refers to a position < i, so the swap from the
        // back cannot invalidate it.)
        remaining[i] = remaining.back();
        remaining.pop_back();
        continue;
      }
      if (!found || inc > best_inc) {
        best_inc = inc;
        best_at = i;
        found = true;
      }
      ++i;
    }
    first_growth_step = false;
    if (!found) break;
    int32_t k = remaining[best_at];
    remaining[best_at] = remaining.back();
    remaining.pop_back();

    for (size_t pos = 0; pos < nq; ++pos) {
      offered[pos] = std::min(offered[pos], graph.IndexCostAt(v, k, pos));
    }
    benefit += best_inc;
    space += graph.index_space(v, k);
    order.push_back(k);

    if (benefit / space > slot->ratio()) {
      slot->candidate.indexes = order;
      slot->benefit = benefit;
      slot->space = space;
    }
  }
}

// Recomputes `slot` for view v: a grown bundle when v is unselected, the
// best single unselected index when v is selected. Runs concurrently
// across views — reads only const state, writes only its own slot.
void EvaluateView(const SelectionState& state, uint32_t v,
                  double space_budget, ViewSlot* slot, uint64_t* evals) {
  const QueryViewGraph& graph = state.graph();
  slot->version = state.ViewVersion(v);
  slot->valid = false;
  slot->bound_ok = true;
  if (!state.ViewSelected(v)) {
    GrowBundle(graph, state, v, space_budget, slot, evals);
    slot->valid = slot->benefit > 0.0;
    return;
  }
  slot->bound = 0.0;
  for (int32_t k = 0; k < graph.num_indexes(v); ++k) {
    if (state.IndexSelected(v, k)) continue;
    Candidate c{v, /*add_view=*/false, {k}};
    double b = state.CandidateBenefit(c);
    ++*evals;
    if (b <= 0.0) continue;
    double sp = state.CandidateSpace(c);
    if (!slot->valid || b / sp > slot->ratio()) {
      slot->candidate = c;
      slot->benefit = b;
      slot->space = sp;
      slot->valid = true;
    }
  }
  // Fixed candidate family: the best single-index ratio bounds every
  // later re-evaluation (benefits are monotone non-increasing).
  if (slot->valid) slot->bound = slot->ratio();
}

}  // namespace

SelectionResult InnerLevelGreedy(const QueryViewGraph& graph,
                                 double space_budget,
                                 const InnerGreedyOptions& options) {
  // Boundary-reachable misuse is rejected, not aborted on.
  if (!graph.finalized()) {
    return SelectionResult::Rejected(
        Status::FailedPrecondition("query-view graph is not finalized"));
  }
  if (!(space_budget >= 0.0)) {  // rejects negatives and NaN
    return SelectionResult::Rejected(Status::InvalidArgument(
        "space budget must be non-negative and finite"));
  }

  OLAPIDX_TRACE_SPAN("inner_greedy.run");
  // Per-run registry delta (see SelectionResult::metrics): captured fresh
  // for every call so repeated runs never accumulate.
  MetricsRunScope metrics_scope;
  SelectionState state(&graph);
  SelectionResult result;
  result.initial_cost = state.TotalCost();
  for (uint32_t q = 0; q < graph.num_queries(); ++q) {
    result.total_frequency += graph.query_frequency(q);
  }
  if (options.resume != nullptr) {
    Status replayed = ReplayPicks(*options.resume, &state, &result);
    if (!replayed.ok()) return SelectionResult::Rejected(replayed);
  }

  std::unique_ptr<ThreadPool> private_pool;
  if (options.num_threads != 0) {
    private_pool = std::make_unique<ThreadPool>(options.num_threads);
  }
  ThreadPool& pool = private_pool ? *private_pool : ThreadPool::Shared();
  const size_t chunks = pool.num_threads();
  result.stats.threads_used = chunks;

  const uint32_t num_views = graph.num_views();
  std::vector<ViewSlot> slots(num_views);
  std::vector<uint32_t> dirty;
  dirty.reserve(num_views);
  std::vector<uint32_t> beamed;    // beam scratch: bounded dirty views
  std::vector<uint32_t> deferred;  // beam-skipped this stage
  std::vector<uint8_t> beam_out(num_views, 0);
  std::vector<uint64_t> chunk_evals(chunks);
  const auto run_start = SteadyClock::now();
  // Stages executed by *this call*; replayed checkpoint stages don't
  // count against the budget.
  size_t steps_this_call = 0;

  while (state.SpaceUsed() < space_budget) {
    if (steps_this_call >= options.control.max_steps) {
      result.status = Status::ResourceExhausted("stage budget reached");
      result.completed = false;
      break;
    }
    if (options.control.StopRequested()) {
      result.status = options.control.StopStatus();
      result.completed = false;
      break;
    }
    const auto stage_start = SteadyClock::now();
    OLAPIDX_TRACE_SPAN("inner_greedy.stage");
    // Candidate evaluations this stage; every loop exit that accounts a
    // stage records wall time and candidate count together so the
    // per-stage vectors stay parallel (RecordRun folds them into the
    // registry histograms in one end-of-run batch).
    uint64_t stage_evals = 0;
    auto end_stage = [&] {
      uint64_t micros = ElapsedMicros(stage_start);
      result.stats.stage_wall_micros.push_back(micros);
      result.stats.stage_candidates.push_back(stage_evals);
    };

    // Pass 1: clean slots are exact; the best clean ratio becomes the
    // lazy-skip threshold for the dirty ones.
    double prune_ratio = 0.0;
    for (uint32_t v = 0; v < num_views; ++v) {
      if (options.memoize && slots[v].version == state.ViewVersion(v)) {
        ++result.stats.cache_hits;
        if (slots[v].valid && slots[v].ratio() > prune_ratio) {
          prune_ratio = slots[v].ratio();
        }
      }
    }

    // Pass 2: a dirty view whose certified stale bound (see ViewSlot)
    // cannot reach the best clean ratio cannot win this stage; skip its
    // regrowth. The slot stays stale and its bound stays valid, since
    // every bound term is monotone non-increasing in M.
    dirty.clear();
    for (uint32_t v = 0; v < num_views; ++v) {
      if (options.memoize && slots[v].version == state.ViewVersion(v)) {
        continue;
      }
      const ViewSlot& s = slots[v];
      if (options.memoize && s.bound_ok && s.bound < prune_ratio) {
        ++result.stats.bound_prunes;
        continue;
      }
      dirty.push_back(v);
    }

    // Beam cap: of the dirty views with a certified stale bound, only the
    // beam_width with the largest bounds are re-grown; the rest are
    // deferred. A deferred slot must not enter the reduction — its stale
    // ratio is an *over*estimate — so it is masked out and accounted in
    // the a-posteriori guarantee instead. Views with no certified bound
    // (first touch, post-pick family change) are always evaluated.
    deferred.clear();
    double deferred_bound = 0.0;
    if (options.memoize && options.beam_width > 0 &&
        dirty.size() > options.beam_width) {
      beamed.clear();
      for (uint32_t v : dirty) {
        if (slots[v].bound_ok) beamed.push_back(v);
      }
      if (beamed.size() > options.beam_width) {
        std::sort(beamed.begin(), beamed.end(),
                  [&](uint32_t a, uint32_t b) {
                    if (slots[a].bound != slots[b].bound) {
                      return slots[a].bound > slots[b].bound;
                    }
                    return a < b;
                  });
        deferred.assign(
            beamed.begin() + static_cast<std::ptrdiff_t>(options.beam_width),
            beamed.end());
        deferred_bound = slots[deferred.front()].bound;
        for (uint32_t v : deferred) beam_out[v] = 1;
        dirty.erase(std::remove_if(
                        dirty.begin(), dirty.end(),
                        [&](uint32_t v) { return beam_out[v] != 0; }),
                    dirty.end());
      }
    }
    result.stats.cache_misses += dirty.size();

    // Evaluation crosses the pool's fault points and polls the stop
    // inputs between per-view evaluations; an interrupted view keeps its
    // stale version and is re-evaluated on resume.
    std::atomic<bool> stop_requested{false};
    auto evaluate_list = [&](const std::vector<uint32_t>& list) -> Status {
      std::fill(chunk_evals.begin(), chunk_evals.end(), 0);
      Status st = pool.TryParallelFor(
          list.size(), [&](size_t begin, size_t end, size_t chunk) -> Status {
            for (size_t i = begin; i < end; ++i) {
              if (stop_requested.load(std::memory_order_relaxed)) break;
              if (options.control.StopRequested()) {
                stop_requested.store(true, std::memory_order_relaxed);
                break;
              }
              EvaluateView(state, list[i], space_budget, &slots[list[i]],
                           &chunk_evals[chunk]);
            }
            return Status::Ok();
          });
      for (uint64_t e : chunk_evals) stage_evals += e;
      return st;
    };
    Status evaluated = evaluate_list(dirty);
    result.candidates_evaluated += stage_evals;
    if (!evaluated.ok()) {
      result.status = evaluated.WithContext("bundle growth");
      result.completed = false;
      end_stage();
      break;
    }
    if (stop_requested.load(std::memory_order_relaxed)) {
      result.status = options.control.StopStatus();
      result.completed = false;
      end_stage();
      break;
    }

    // Deterministic reduction over all views: ascending view id with
    // strictly-greater ratio implements the documented candidate order.
    // Bound-pruned stale slots are harmless: their cached ratio is at
    // most their bound, strictly below the best clean ratio, which
    // itself participates. Beam-deferred slots are masked out.
    const ViewSlot* winner = nullptr;
    auto reduce = [&] {
      winner = nullptr;
      for (uint32_t v = 0; v < num_views; ++v) {
        if (beam_out[v] != 0) continue;
        const ViewSlot& s = slots[v];
        if (s.valid && (winner == nullptr || s.ratio() > winner->ratio())) {
          winner = &s;
        }
      }
    };
    reduce();
    if (winner == nullptr && !deferred.empty()) {
      // The beam hid every remaining positive candidate: grow the
      // deferred set after all, so a beam run never stops before the
      // exact one would.
      for (uint32_t v : deferred) beam_out[v] = 0;
      const uint64_t evals_before = stage_evals;
      Status fallback = evaluate_list(deferred);
      result.stats.cache_misses += deferred.size();
      result.candidates_evaluated += stage_evals - evals_before;
      deferred.clear();
      if (!fallback.ok()) {
        result.status = fallback.WithContext("bundle growth");
        result.completed = false;
        end_stage();
        break;
      }
      if (stop_requested.load(std::memory_order_relaxed)) {
        result.status = options.control.StopStatus();
        result.completed = false;
        end_stage();
        break;
      }
      reduce();
    }
    if (winner == nullptr) {
      end_stage();
      break;
    }
    if (!deferred.empty()) {
      result.beam_skipped += deferred.size();
      result.beam_stage_factor = std::min(
          result.beam_stage_factor,
          winner->ratio() / std::max(winner->ratio(), deferred_bound));
      for (uint32_t v : deferred) beam_out[v] = 0;
    }

    const Candidate c = winner->candidate;  // copy: Apply dirties the slot
    double per_structure =
        winner->benefit / static_cast<double>(c.NumStructures());
    state.Apply(c);
    // The picked view's candidate family changed (bundle growth gives
    // way to single indexes, or an index left the family): its stale
    // bound no longer applies, so force re-evaluation.
    slots[c.view].bound_ok = false;
    if (c.add_view) {
      result.picks.push_back(StructureRef{c.view, StructureRef::kNoIndex});
      result.pick_benefits.push_back(per_structure);
    }
    for (int32_t k : c.indexes) {
      result.picks.push_back(StructureRef{c.view, k});
      result.pick_benefits.push_back(per_structure);
    }
    ++result.stats.stages;
    ++steps_this_call;
    end_stage();
  }

  result.stats.total_wall_micros = ElapsedMicros(run_start);
  result.space_used = state.SpaceUsed();
  result.final_cost = state.TotalCost();
  result.total_maintenance = state.TotalMaintenance();
  selection_metrics::RecordRun(result, steps_this_call);
  result.metrics = metrics_scope.Delta();
  return result;
}

}  // namespace olapidx
