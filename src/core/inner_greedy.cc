#include "core/inner_greedy.h"

#include <algorithm>

#include "core/selection_state.h"

namespace olapidx {

namespace {

// Result of growing IG for one view: the ratio-maximal prefix.
struct GrownBundle {
  Candidate candidate;
  double benefit = 0.0;
  double space = 0.0;
  bool valid = false;

  double ratio() const { return benefit / space; }
};

// Grows IG = {view v} U indexes greedily (largest incremental benefit
// first) while S(IG) < budget, and returns the prefix with maximal benefit
// per unit space with respect to the current state.
GrownBundle GrowBundle(const QueryViewGraph& graph,
                       const SelectionState& state, uint32_t v,
                       double space_budget, uint64_t* evals) {
  const std::vector<uint32_t>& queries = graph.ViewQueries(v);
  const size_t nq = queries.size();

  // offered[pos]: cheapest cost IG currently offers for queries[pos].
  std::vector<double> offered(nq);
  double benefit = 0.0;
  for (size_t pos = 0; pos < nq; ++pos) {
    offered[pos] = graph.ViewCostAt(v, pos);
    double cur = state.QueryBestCost(queries[pos]);
    if (offered[pos] < cur) {
      benefit += graph.query_frequency(queries[pos]) * (cur - offered[pos]);
    }
  }
  benefit -= graph.structure_maintenance(
      StructureRef{v, StructureRef::kNoIndex});
  ++*evals;

  double space = graph.view_space(v);
  std::vector<int32_t> order;  // growth order of appended indexes

  GrownBundle best;
  best.candidate = Candidate{v, /*add_view=*/true, {}};
  best.benefit = benefit;
  best.space = space;
  best.valid = true;

  std::vector<int32_t> remaining;
  for (int32_t k = 0; k < graph.num_indexes(v); ++k) remaining.push_back(k);

  while (space < space_budget && !remaining.empty()) {
    // Find the index with the largest incremental benefit w.r.t. M ∪ IG.
    double best_inc = 0.0;
    size_t best_at = 0;
    bool found = false;
    for (size_t i = 0; i < remaining.size();) {
      int32_t k = remaining[i];
      double inc = 0.0;
      for (size_t pos = 0; pos < nq; ++pos) {
        double c = graph.IndexCostAt(v, k, pos);
        if (c >= offered[pos]) continue;
        double cur = state.QueryBestCost(queries[pos]);
        double old_red = std::max(0.0, cur - offered[pos]);
        double new_red = std::max(0.0, cur - c);
        inc += graph.query_frequency(queries[pos]) * (new_red - old_red);
      }
      inc -= graph.structure_maintenance(StructureRef{v, k});
      ++*evals;
      if (inc <= 0.0) {
        // Offered costs only decrease as IG grows, so a zero-increment
        // index stays at zero for the rest of this growth: drop it.
        // (best_at always refers to a position < i, so the swap from the
        // back cannot invalidate it.)
        remaining[i] = remaining.back();
        remaining.pop_back();
        continue;
      }
      if (!found || inc > best_inc) {
        best_inc = inc;
        best_at = i;
        found = true;
      }
      ++i;
    }
    if (!found) break;
    int32_t k = remaining[best_at];
    remaining[best_at] = remaining.back();
    remaining.pop_back();

    for (size_t pos = 0; pos < nq; ++pos) {
      offered[pos] = std::min(offered[pos], graph.IndexCostAt(v, k, pos));
    }
    benefit += best_inc;
    space += graph.index_space(v, k);
    order.push_back(k);

    if (benefit / space > best.ratio()) {
      best.candidate.indexes = order;
      best.benefit = benefit;
      best.space = space;
    }
  }
  return best;
}

}  // namespace

SelectionResult InnerLevelGreedy(const QueryViewGraph& graph,
                                 double space_budget) {
  OLAPIDX_CHECK(graph.finalized());
  OLAPIDX_CHECK(space_budget >= 0.0);

  SelectionState state(&graph);
  SelectionResult result;
  result.initial_cost = state.TotalCost();
  for (uint32_t q = 0; q < graph.num_queries(); ++q) {
    result.total_frequency += graph.query_frequency(q);
  }

  while (state.SpaceUsed() < space_budget) {
    // Phase 1: the best greedily-grown {view + indexes} bundle.
    GrownBundle best_bundle;
    for (uint32_t v = 0; v < graph.num_views(); ++v) {
      if (state.ViewSelected(v)) continue;
      GrownBundle g = GrowBundle(graph, state, v, space_budget,
                                 &result.candidates_evaluated);
      if (g.valid && g.benefit > 0.0 &&
          (!best_bundle.valid || g.ratio() > best_bundle.ratio())) {
        best_bundle = g;
      }
    }

    // Phase 2: the best single index on an already-selected view.
    GrownBundle best_index;
    for (uint32_t v = 0; v < graph.num_views(); ++v) {
      if (!state.ViewSelected(v)) continue;
      for (int32_t k = 0; k < graph.num_indexes(v); ++k) {
        if (state.IndexSelected(v, k)) continue;
        Candidate c{v, /*add_view=*/false, {k}};
        double b = state.CandidateBenefit(c);
        ++result.candidates_evaluated;
        if (b <= 0.0) continue;
        double ratio = b / state.CandidateSpace(c);
        if (!best_index.valid || ratio > best_index.ratio()) {
          best_index.candidate = c;
          best_index.benefit = b;
          best_index.space = state.CandidateSpace(c);
          best_index.valid = true;
        }
      }
    }

    const GrownBundle* winner = nullptr;
    if (best_bundle.valid && best_bundle.benefit > 0.0) {
      winner = &best_bundle;
    }
    if (best_index.valid &&
        (winner == nullptr || best_index.ratio() > winner->ratio())) {
      winner = &best_index;
    }
    if (winner == nullptr) break;

    const Candidate& c = winner->candidate;
    double per_structure =
        winner->benefit / static_cast<double>(c.NumStructures());
    state.Apply(c);
    if (c.add_view) {
      result.picks.push_back(StructureRef{c.view, StructureRef::kNoIndex});
      result.pick_benefits.push_back(per_structure);
    }
    for (int32_t k : c.indexes) {
      result.picks.push_back(StructureRef{c.view, k});
      result.pick_benefits.push_back(per_structure);
    }
  }

  result.space_used = state.SpaceUsed();
  result.final_cost = state.TotalCost();
  result.total_maintenance = state.TotalMaintenance();
  return result;
}

}  // namespace olapidx
