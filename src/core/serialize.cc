#include "core/serialize.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace olapidx {

namespace {

std::string Trim(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  size_t end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

std::vector<std::string> SplitTrimmed(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string current;
  for (char c : s) {
    if (c == sep) {
      out.push_back(Trim(current));
      current.clear();
    } else {
      current += c;
    }
  }
  out.push_back(Trim(current));
  return out;
}

int AttrByName(const CubeSchema& schema, const std::string& name) {
  for (int a = 0; a < schema.num_dimensions(); ++a) {
    if (schema.dimension(a).name == name) return a;
  }
  return -1;
}

std::string AttrsToNames(AttributeSet attrs, const CubeSchema& schema) {
  if (attrs.empty()) return "none";
  std::string out;
  for (int a : attrs.ToVector()) {
    if (!out.empty()) out += ",";
    out += schema.dimension(a).name;
  }
  return out;
}

// Parses an *unordered* attribute set ("none" allowed).
bool ParseAttrSet(const std::string& field, const CubeSchema& schema,
                  AttributeSet* attrs, std::string* error) {
  *attrs = AttributeSet();
  std::string trimmed = Trim(field);
  if (trimmed == "none" || trimmed.empty()) return true;
  for (const std::string& name : SplitTrimmed(trimmed, ',')) {
    int a = AttrByName(schema, name);
    if (a < 0) {
      *error = "unknown dimension '" + name + "'";
      return false;
    }
    if (attrs->Contains(a)) {
      *error = "duplicate dimension '" + name + "'";
      return false;
    }
    *attrs = attrs->With(a);
  }
  return true;
}

// Parses an *ordered* key ("s,p" -> IndexKey({1,0})).
bool ParseKey(const std::string& field, const CubeSchema& schema,
              IndexKey* key, std::string* error) {
  std::vector<int> order;
  AttributeSet seen;
  for (const std::string& name : SplitTrimmed(Trim(field), ',')) {
    int a = AttrByName(schema, name);
    if (a < 0) {
      *error = "unknown dimension '" + name + "'";
      return false;
    }
    if (seen.Contains(a)) {
      *error = "duplicate dimension '" + name + "'";
      return false;
    }
    seen = seen.With(a);
    order.push_back(a);
  }
  if (order.empty()) {
    *error = "empty index key";
    return false;
  }
  *key = IndexKey(order);
  return true;
}

std::string KeyToNames(const IndexKey& key, const CubeSchema& schema) {
  std::string out;
  for (int a : key.attrs()) {
    if (!out.empty()) out += ",";
    out += schema.dimension(a).name;
  }
  return out;
}

}  // namespace

std::string SerializeDesign(
    const std::vector<RecommendedStructure>& structures,
    const CubeSchema& schema) {
  std::string out = "olapidx-design v1\n";
  for (const RecommendedStructure& s : structures) {
    if (s.is_view()) {
      out += "view " + AttrsToNames(s.view, schema) + "\n";
    } else {
      out += "index " + AttrsToNames(s.view, schema) + " : " +
             KeyToNames(s.index, schema) + "\n";
    }
  }
  return out;
}

bool ParseDesign(const std::string& text, const CubeSchema& schema,
                 std::vector<RecommendedStructure>* structures,
                 std::string* error) {
  OLAPIDX_CHECK(structures != nullptr);
  OLAPIDX_CHECK(error != nullptr);
  structures->clear();
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  bool header_seen = false;
  auto fail = [&](const std::string& message) {
    *error = "line " + std::to_string(line_no) + ": " + message;
    return false;
  };
  while (std::getline(in, line)) {
    ++line_no;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = Trim(line);
    if (line.empty()) continue;
    if (!header_seen) {
      if (line != "olapidx-design v1") {
        return fail("expected header 'olapidx-design v1'");
      }
      header_seen = true;
      continue;
    }
    std::string attr_error;
    if (line.rfind("view ", 0) == 0) {
      AttributeSet attrs;
      if (!ParseAttrSet(line.substr(5), schema, &attrs, &attr_error)) {
        return fail(attr_error);
      }
      RecommendedStructure s;
      s.view = attrs;
      s.name = attrs.ToString(schema.names());
      structures->push_back(std::move(s));
    } else if (line.rfind("index ", 0) == 0) {
      std::string rest = line.substr(6);
      size_t colon = rest.find(':');
      if (colon == std::string::npos) {
        return fail("expected 'index <view> : <key>'");
      }
      AttributeSet view_attrs;
      if (!ParseAttrSet(rest.substr(0, colon), schema, &view_attrs,
                        &attr_error)) {
        return fail(attr_error);
      }
      IndexKey key;
      if (!ParseKey(rest.substr(colon + 1), schema, &key, &attr_error)) {
        return fail(attr_error);
      }
      if (!key.AsSet().IsSubsetOf(view_attrs)) {
        return fail("index key uses attributes outside its view");
      }
      RecommendedStructure s;
      s.view = view_attrs;
      s.index = key;
      s.name = key.ToString(schema.names()) + "(" +
               view_attrs.ToString(schema.names()) + ")";
      structures->push_back(std::move(s));
    } else {
      return fail("expected 'view ...' or 'index ...'");
    }
  }
  if (!header_seen) {
    line_no = 1;
    return fail("missing header 'olapidx-design v1'");
  }
  error->clear();
  return true;
}

std::string SerializeViewSizes(const ViewSizes& sizes,
                               const CubeSchema& schema) {
  std::string out = "olapidx-sizes v1\n";
  for (uint32_t v = 0; v < sizes.num_views(); ++v) {
    AttributeSet attrs = AttributeSet::FromMask(v);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", sizes[v]);
    out += "size " + AttrsToNames(attrs, schema) + " " + buf + "\n";
  }
  return out;
}

bool ParseViewSizes(const std::string& text, const CubeSchema& schema,
                    ViewSizes* sizes, std::string* error) {
  OLAPIDX_CHECK(sizes != nullptr);
  OLAPIDX_CHECK(error != nullptr);
  *sizes = ViewSizes(schema.num_dimensions());
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  bool header_seen = false;
  auto fail = [&](const std::string& message) {
    *error = "line " + std::to_string(line_no) + ": " + message;
    return false;
  };
  while (std::getline(in, line)) {
    ++line_no;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = Trim(line);
    if (line.empty()) continue;
    if (!header_seen) {
      if (line != "olapidx-sizes v1") {
        return fail("expected header 'olapidx-sizes v1'");
      }
      header_seen = true;
      continue;
    }
    if (line.rfind("size ", 0) != 0) return fail("expected 'size ...'");
    std::string rest = Trim(line.substr(5));
    size_t space = rest.find_last_of(" \t");
    if (space == std::string::npos) {
      return fail("expected 'size <attrs> <rows>'");
    }
    AttributeSet attrs;
    std::string attr_error;
    if (!ParseAttrSet(rest.substr(0, space), schema, &attrs, &attr_error)) {
      return fail(attr_error);
    }
    char* end = nullptr;
    std::string num = Trim(rest.substr(space + 1));
    double rows = std::strtod(num.c_str(), &end);
    if (end == nullptr || *end != '\0' || rows < 1.0) {
      return fail("bad row count '" + num + "'");
    }
    sizes->Set(attrs, rows);
  }
  if (!header_seen) {
    line_no = 1;
    return fail("missing header 'olapidx-sizes v1'");
  }
  if (!sizes->Complete()) {
    *error = "missing sizes: not every subcube was given a row count";
    return false;
  }
  error->clear();
  return true;
}

}  // namespace olapidx
