#include "core/serialize.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <set>
#include <sstream>
#include <utility>

#include "common/fault_injection.h"
#include "common/journal.h"

namespace olapidx {

namespace {

std::string Trim(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  size_t end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

std::vector<std::string> SplitTrimmed(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string current;
  for (char c : s) {
    if (c == sep) {
      out.push_back(Trim(current));
      current.clear();
    } else {
      current += c;
    }
  }
  out.push_back(Trim(current));
  return out;
}

int AttrByName(const CubeSchema& schema, const std::string& name) {
  for (int a = 0; a < schema.num_dimensions(); ++a) {
    if (schema.dimension(a).name == name) return a;
  }
  return -1;
}

std::string AttrsToNames(AttributeSet attrs, const CubeSchema& schema) {
  if (attrs.empty()) return "none";
  std::string out;
  for (int a : attrs.ToVector()) {
    if (!out.empty()) out += ",";
    out += schema.dimension(a).name;
  }
  return out;
}

// Parses an *unordered* attribute set ("none" allowed).
bool ParseAttrSet(const std::string& field, const CubeSchema& schema,
                  AttributeSet* attrs, std::string* error) {
  *attrs = AttributeSet();
  std::string trimmed = Trim(field);
  if (trimmed == "none" || trimmed.empty()) return true;
  for (const std::string& name : SplitTrimmed(trimmed, ',')) {
    int a = AttrByName(schema, name);
    if (a < 0) {
      *error = "unknown dimension '" + name + "'";
      return false;
    }
    if (attrs->Contains(a)) {
      *error = "duplicate dimension '" + name + "'";
      return false;
    }
    *attrs = attrs->With(a);
  }
  return true;
}

// Parses an *ordered* key ("s,p" -> IndexKey({1,0})).
bool ParseKey(const std::string& field, const CubeSchema& schema,
              IndexKey* key, std::string* error) {
  std::vector<int> order;
  AttributeSet seen;
  for (const std::string& name : SplitTrimmed(Trim(field), ',')) {
    int a = AttrByName(schema, name);
    if (a < 0) {
      *error = "unknown dimension '" + name + "'";
      return false;
    }
    if (seen.Contains(a)) {
      *error = "duplicate dimension '" + name + "'";
      return false;
    }
    seen = seen.With(a);
    order.push_back(a);
  }
  if (order.empty()) {
    *error = "empty index key";
    return false;
  }
  *key = IndexKey(order);
  return true;
}

std::string KeyToNames(const IndexKey& key, const CubeSchema& schema) {
  std::string out;
  for (int a : key.attrs()) {
    if (!out.empty()) out += ",";
    out += schema.dimension(a).name;
  }
  return out;
}

// Tracks which structures a design being parsed has declared so far, for
// duplicate and index-before-view rejection.
struct DesignDedup {
  std::set<uint32_t> views;                              // by attr mask
  std::set<std::pair<uint32_t, std::vector<int>>> indexes;  // (view, key)
};

// Parses one "view <attrs>" or "index <view> : <key>" line into a
// RecommendedStructure, enforcing the structural design rules: no
// duplicate structure, every index after its view's own line. On success
// appends to `out`.
bool ParseStructureLine(const std::string& line, const CubeSchema& schema,
                        DesignDedup* dedup,
                        std::vector<RecommendedStructure>* out,
                        std::string* error) {
  if (line.rfind("view ", 0) == 0) {
    AttributeSet attrs;
    if (!ParseAttrSet(line.substr(5), schema, &attrs, error)) return false;
    if (!dedup->views.insert(attrs.mask()).second) {
      *error = "duplicate view '" + AttrsToNames(attrs, schema) + "'";
      return false;
    }
    RecommendedStructure s;
    s.view = attrs;
    s.name = attrs.ToString(schema.names());
    out->push_back(std::move(s));
    return true;
  }
  if (line.rfind("index ", 0) == 0) {
    std::string rest = line.substr(6);
    size_t colon = rest.find(':');
    if (colon == std::string::npos) {
      *error = "expected 'index <view> : <key>'";
      return false;
    }
    AttributeSet view_attrs;
    if (!ParseAttrSet(rest.substr(0, colon), schema, &view_attrs, error)) {
      return false;
    }
    IndexKey key;
    if (!ParseKey(rest.substr(colon + 1), schema, &key, error)) {
      return false;
    }
    if (!key.AsSet().IsSubsetOf(view_attrs)) {
      *error = "index key uses attributes outside its view";
      return false;
    }
    if (dedup->views.find(view_attrs.mask()) == dedup->views.end()) {
      *error = "index on unmaterialized view '" +
               AttrsToNames(view_attrs, schema) +
               "' (no preceding 'view' line)";
      return false;
    }
    if (!dedup->indexes.insert({view_attrs.mask(), key.attrs()}).second) {
      *error = "duplicate index '" + KeyToNames(key, schema) + "' on view '" +
               AttrsToNames(view_attrs, schema) + "'";
      return false;
    }
    RecommendedStructure s;
    s.view = view_attrs;
    s.index = key;
    s.name = key.ToString(schema.names()) + "(" +
             view_attrs.ToString(schema.names()) + ")";
    out->push_back(std::move(s));
    return true;
  }
  *error = "expected 'view ...' or 'index ...'";
  return false;
}

// Strips comments, iterates non-blank trimmed lines of `text`, calling
// fn(line) until it returns a non-OK Status, which is returned tagged
// with the 1-based line number. Checks the header on the first line.
Status ForEachLine(const std::string& text, const std::string& header,
                   const std::function<Status(const std::string&)>& fn) {
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  bool header_seen = false;
  while (std::getline(in, line)) {
    ++line_no;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = Trim(line);
    if (line.empty()) continue;
    if (!header_seen) {
      if (line != header) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": expected header '" + header + "'");
      }
      header_seen = true;
      continue;
    }
    Status status = fn(line);
    if (!status.ok()) {
      return Status(status.code(), "line " + std::to_string(line_no) + ": " +
                                       std::string(status.message()));
    }
  }
  if (!header_seen) {
    return Status::InvalidArgument("line 1: missing header '" + header +
                                   "'");
  }
  return Status::Ok();
}

// Parses a strictly finite, non-negative double occupying the whole field.
bool ParseNonNegativeDouble(const std::string& field, double* out) {
  std::string num = Trim(field);
  if (num.empty()) return false;
  char* end = nullptr;
  double value = std::strtod(num.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  if (!std::isfinite(value) || value < 0.0) return false;
  *out = value;
  return true;
}

}  // namespace

std::string SerializeDesign(
    const std::vector<RecommendedStructure>& structures,
    const CubeSchema& schema) {
  std::string out = "olapidx-design v1\n";
  for (const RecommendedStructure& s : structures) {
    if (s.is_view()) {
      out += "view " + AttrsToNames(s.view, schema) + "\n";
    } else {
      out += "index " + AttrsToNames(s.view, schema) + " : " +
             KeyToNames(s.index, schema) + "\n";
    }
  }
  return out;
}

StatusOr<std::vector<RecommendedStructure>> ParseDesign(
    const std::string& text, const CubeSchema& schema) {
  OLAPIDX_FAULT_POINT("serialize.design.parse");
  std::vector<RecommendedStructure> structures;
  DesignDedup dedup;
  Status status =
      ForEachLine(text, "olapidx-design v1", [&](const std::string& line) {
        std::string error;
        if (!ParseStructureLine(line, schema, &dedup, &structures, &error)) {
          return Status::InvalidArgument(error);
        }
        return Status::Ok();
      });
  if (!status.ok()) return status;
  return structures;
}

std::string SerializeViewSizes(const ViewSizes& sizes,
                               const CubeSchema& schema) {
  std::string out = "olapidx-sizes v1\n";
  for (uint32_t v = 0; v < sizes.num_views(); ++v) {
    AttributeSet attrs = AttributeSet::FromMask(v);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", sizes[v]);
    out += "size " + AttrsToNames(attrs, schema) + " " + buf + "\n";
  }
  return out;
}

StatusOr<ViewSizes> ParseViewSizes(const std::string& text,
                                   const CubeSchema& schema) {
  OLAPIDX_FAULT_POINT("serialize.sizes.parse");
  ViewSizes sizes(schema.num_dimensions());
  std::set<uint32_t> seen;
  Status status =
      ForEachLine(text, "olapidx-sizes v1", [&](const std::string& line) {
        if (line.rfind("size ", 0) != 0) {
          return Status::InvalidArgument("expected 'size ...'");
        }
        std::string rest = Trim(line.substr(5));
        size_t space = rest.find_last_of(" \t");
        if (space == std::string::npos) {
          return Status::InvalidArgument("expected 'size <attrs> <rows>'");
        }
        AttributeSet attrs;
        std::string attr_error;
        if (!ParseAttrSet(rest.substr(0, space), schema, &attrs,
                          &attr_error)) {
          return Status::InvalidArgument(attr_error);
        }
        if (!seen.insert(attrs.mask()).second) {
          return Status::InvalidArgument(
              "duplicate size for subcube '" + AttrsToNames(attrs, schema) +
              "'");
        }
        std::string num = Trim(rest.substr(space + 1));
        double rows = 0.0;
        if (!ParseNonNegativeDouble(num, &rows) || rows < 1.0) {
          return Status::InvalidArgument("bad row count '" + num + "'");
        }
        sizes.Set(attrs, rows);
        return Status::Ok();
      });
  if (!status.ok()) return status;
  if (!sizes.Complete()) {
    return Status::InvalidArgument(
        "missing sizes: not every subcube was given a row count");
  }
  return sizes;
}

std::string SerializeCheckpoint(const SelectionCheckpoint& checkpoint,
                                const CubeSchema& schema) {
  std::string out = "olapidx-checkpoint v1\n";
  out += "algorithm " + checkpoint.algorithm + "\n";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", checkpoint.space_budget);
  out += "budget " + std::string(buf) + "\n";
  if (checkpoint.graph_fingerprint != 0) {
    out += "graph " + HashToHex(checkpoint.graph_fingerprint) + "\n";
  }
  out += "stages " + std::to_string(checkpoint.stages) + "\n";
  for (size_t i = 0; i < checkpoint.picks.size(); ++i) {
    const RecommendedStructure& s = checkpoint.picks[i];
    double benefit =
        i < checkpoint.pick_benefits.size() ? checkpoint.pick_benefits[i]
                                            : 0.0;
    std::snprintf(buf, sizeof(buf), "%.17g", benefit);
    out += "pick " + std::string(buf) + " ";
    if (s.is_view()) {
      out += "view " + AttrsToNames(s.view, schema) + "\n";
    } else {
      out += "index " + AttrsToNames(s.view, schema) + " : " +
             KeyToNames(s.index, schema) + "\n";
    }
  }
  return out;
}

StatusOr<SelectionCheckpoint> ParseCheckpoint(const std::string& text,
                                              const CubeSchema& schema) {
  OLAPIDX_FAULT_POINT("serialize.checkpoint.parse");
  SelectionCheckpoint checkpoint;
  DesignDedup dedup;
  bool algorithm_seen = false;
  bool budget_seen = false;
  bool stages_seen = false;
  Status status = ForEachLine(
      text, "olapidx-checkpoint v1", [&](const std::string& line) {
        if (line.rfind("algorithm ", 0) == 0) {
          if (algorithm_seen) {
            return Status::InvalidArgument("duplicate 'algorithm' line");
          }
          algorithm_seen = true;
          checkpoint.algorithm = Trim(line.substr(10));
          if (checkpoint.algorithm.empty()) {
            return Status::InvalidArgument("empty algorithm name");
          }
          return Status::Ok();
        }
        if (line.rfind("budget ", 0) == 0) {
          if (budget_seen) {
            return Status::InvalidArgument("duplicate 'budget' line");
          }
          budget_seen = true;
          if (!ParseNonNegativeDouble(line.substr(7),
                                      &checkpoint.space_budget)) {
            return Status::InvalidArgument("bad budget '" +
                                           Trim(line.substr(7)) + "'");
          }
          return Status::Ok();
        }
        if (line.rfind("graph ", 0) == 0) {
          if (checkpoint.graph_fingerprint != 0) {
            return Status::InvalidArgument("duplicate 'graph' line");
          }
          std::string hex = Trim(line.substr(6));
          if (!ParseHexHash(hex, &checkpoint.graph_fingerprint) ||
              checkpoint.graph_fingerprint == 0) {
            return Status::InvalidArgument(
                "bad graph fingerprint '" + hex +
                "' (expected 16 hex digits, nonzero)");
          }
          return Status::Ok();
        }
        if (line.rfind("stages ", 0) == 0) {
          if (stages_seen) {
            return Status::InvalidArgument("duplicate 'stages' line");
          }
          stages_seen = true;
          std::string num = Trim(line.substr(7));
          char* end = nullptr;
          unsigned long long stages = std::strtoull(num.c_str(), &end, 10);
          if (num.empty() || end == nullptr || *end != '\0') {
            return Status::InvalidArgument("bad stage count '" + num + "'");
          }
          checkpoint.stages = static_cast<uint64_t>(stages);
          return Status::Ok();
        }
        if (line.rfind("pick ", 0) == 0) {
          std::string rest = Trim(line.substr(5));
          size_t space = rest.find_first_of(" \t");
          if (space == std::string::npos) {
            return Status::InvalidArgument(
                "expected 'pick <benefit> view|index ...'");
          }
          double benefit = 0.0;
          if (!ParseNonNegativeDouble(rest.substr(0, space), &benefit)) {
            return Status::InvalidArgument("bad pick benefit '" +
                                           rest.substr(0, space) + "'");
          }
          std::string structure = Trim(rest.substr(space + 1));
          std::string error;
          if (!ParseStructureLine(structure, schema, &dedup,
                                  &checkpoint.picks, &error)) {
            return Status::InvalidArgument(error);
          }
          checkpoint.pick_benefits.push_back(benefit);
          return Status::Ok();
        }
        return Status::InvalidArgument(
            "expected 'algorithm', 'budget', 'graph', 'stages', or "
            "'pick ...'");
      });
  if (!status.ok()) return status;
  if (!algorithm_seen) {
    return Status::InvalidArgument("missing 'algorithm' line");
  }
  if (!budget_seen) return Status::InvalidArgument("missing 'budget' line");
  if (!stages_seen) return Status::InvalidArgument("missing 'stages' line");
  if (checkpoint.stages > checkpoint.picks.size()) {
    return Status::InvalidArgument(
        "stage count exceeds the number of picks");
  }
  return checkpoint;
}

}  // namespace olapidx
