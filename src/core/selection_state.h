// SelectionState: incremental evaluation of τ(G, M) and of the benefit
// B(C, M) of candidate structure sets (Section 5.2).
//
// The state keeps, per query, the best cost achievable with the currently
// selected set M. Evaluating a candidate touches only the queries adjacent
// to the candidate's view, and applying a pick updates the state in place —
// the workhorse that keeps the greedy algorithms near their theoretical
// running times.

#ifndef OLAPIDX_CORE_SELECTION_STATE_H_
#define OLAPIDX_CORE_SELECTION_STATE_H_

#include <vector>

#include "common/status.h"
#include "core/selection_result.h"

namespace olapidx {

// A candidate set C for one greedy stage. All structures belong to a single
// view (the only shape the paper's algorithms ever consider): either the
// view plus some of its indexes, or — when the view is already selected —
// indexes alone.
struct Candidate {
  uint32_t view = 0;
  bool add_view = false;         // true iff the view itself is newly added
  std::vector<int32_t> indexes;  // index positions within the view

  size_t NumStructures() const {
    return indexes.size() + (add_view ? 1 : 0);
  }
};

class SelectionState {
 public:
  explicit SelectionState(const QueryViewGraph* graph);

  const QueryViewGraph& graph() const { return *graph_; }

  double TotalCost() const { return total_cost_; }
  double SpaceUsed() const { return space_used_; }
  // Accumulated maintenance cost of the selected structures (0 unless the
  // graph uses the update-aware extension).
  double TotalMaintenance() const { return maintenance_; }
  // B(M, ∅): total benefit accumulated so far, net of maintenance.
  double TotalBenefit() const {
    return initial_cost_ - total_cost_ - maintenance_;
  }

  bool ViewSelected(uint32_t v) const { return view_selected_[v] != 0; }
  bool IndexSelected(uint32_t v, int32_t k) const {
    return index_selected_[v][static_cast<size_t>(k)] != 0;
  }
  bool Selected(StructureRef s) const {
    return s.is_view() ? ViewSelected(s.view)
                       : IndexSelected(s.view, s.index);
  }

  const std::vector<StructureRef>& picks() const { return picks_; }

  // Space the candidate would add (sum of its structures' spaces).
  double CandidateSpace(const Candidate& c) const;

  // B(C, M): decrease in τ if the candidate were added to the current
  // selection, minus the candidate's maintenance cost. The candidate must
  // be *valid*: its view either included in the candidate or already
  // selected, and no structure already selected.
  double CandidateBenefit(const Candidate& c) const;

  // Maintenance cost the candidate would add.
  double CandidateMaintenance(const Candidate& c) const;

  // Benefit per unit space; 0-space candidates are invalid.
  double CandidateBenefitPerSpace(const Candidate& c) const {
    return CandidateBenefit(c) / CandidateSpace(c);
  }

  // Adds the candidate to M, updating per-query best costs, τ and space.
  void Apply(const Candidate& c);

  // Convenience for single-structure candidates.
  double StructureBenefit(StructureRef s) const;
  void ApplyStructure(StructureRef s);

  // Current best cost for query q (min of T_q and selected structures).
  double QueryBestCost(uint32_t q) const { return best_cost_[q]; }

  // ---- Dirty-set invalidation support (benefit memoization) ----
  //
  // A candidate's benefit depends on the current state only through the
  // best costs of the queries adjacent to its view. Apply() bumps the
  // version of every view adjacent to a query whose best cost it changed
  // (fan-out via QueryViewGraph::QueryViews). Hence a benefit computed
  // for a candidate on view v while ViewVersion(v) == t is
  //   * bit-exact as long as ViewVersion(v) == t still holds, and
  //   * an upper bound on the current benefit otherwise (single-view
  //     candidate benefits are monotone non-increasing in M, the
  //     submodularity fact the CELF lazy trick relies on).
  uint64_t ViewVersion(uint32_t v) const { return view_version_[v]; }

 private:
  void ValidateCandidate(const Candidate& c) const;

  const QueryViewGraph* graph_;
  std::vector<double> best_cost_;           // per query
  std::vector<uint8_t> view_selected_;      // per view
  std::vector<std::vector<uint8_t>> index_selected_;  // [view][index]
  std::vector<StructureRef> picks_;
  std::vector<uint64_t> view_version_;  // bumped when a view's benefit may change
  double initial_cost_ = 0.0;
  double total_cost_ = 0.0;
  double space_used_ = 0.0;
  double maintenance_ = 0.0;
};

// Replays a checkpointed pick prefix into `state` and seeds `result` with
// the replayed picks/benefits/stage count. Validates against the graph —
// ids in range, no duplicates, every index pick preceded by its view,
// parallel benefit array — and returns InvalidArgument (leaving the run
// rejected) instead of aborting on a corrupt or mismatched checkpoint.
Status ReplayPicks(const ResumePicks& resume, SelectionState* state,
                   SelectionResult* result);

}  // namespace olapidx

#endif  // OLAPIDX_CORE_SELECTION_STATE_H_
