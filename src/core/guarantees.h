// Closed-form performance guarantees (Theorems 5.1 and 5.2, Section 6 /
// Figure 3). Guarantees are lower bounds on
// (benefit of the algorithm's selection) / (optimal benefit using the same
// space), under the theorems' assumptions (unit structure sizes for
// r-greedy; no structure larger than S for inner-level greedy).

#ifndef OLAPIDX_CORE_GUARANTEES_H_
#define OLAPIDX_CORE_GUARANTEES_H_

#include <cmath>

#include "common/check.h"

namespace olapidx {

// r-greedy: 1 − e^−((r−1)/r).  r = 1 → 0 (1-greedy can be arbitrarily
// bad); r = 2 → 0.39; r = 3 → 0.49; r = 4 → 0.53; r → ∞ → 1 − 1/e.
inline double RGreedyGuarantee(int r) {
  OLAPIDX_CHECK(r >= 1);
  return 1.0 - std::exp(-(static_cast<double>(r) - 1.0) /
                        static_cast<double>(r));
}

// Inner-level greedy: 1 − e^−0.63 ≈ 0.467 (Theorem 5.2); sits between the
// 2-greedy and 3-greedy guarantees at roughly 2-greedy's running time.
inline double InnerLevelGuarantee() { return 1.0 - std::exp(-0.63); }

// The [HRU96] views-only greedy under a space constraint: 1 − 1/e ≈ 0.63 —
// also the limit of the r-greedy guarantees as r → ∞.
inline double HruGuarantee() { return 1.0 - std::exp(-1.0); }

}  // namespace olapidx

#endif  // OLAPIDX_CORE_GUARANTEES_H_
