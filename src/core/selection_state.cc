#include "core/selection_state.h"

#include <algorithm>

namespace olapidx {

SelectionState::SelectionState(const QueryViewGraph* graph) : graph_(graph) {
  OLAPIDX_CHECK(graph != nullptr);
  OLAPIDX_CHECK(graph->finalized());
  best_cost_.reserve(graph->num_queries());
  for (uint32_t q = 0; q < graph->num_queries(); ++q) {
    double cost = graph->query_default_cost(q);
    best_cost_.push_back(cost);
    initial_cost_ += graph->query_frequency(q) * cost;
  }
  total_cost_ = initial_cost_;
  view_selected_.assign(graph->num_views(), 0);
  view_version_.assign(graph->num_views(), 0);
  index_selected_.resize(graph->num_views());
  for (uint32_t v = 0; v < graph->num_views(); ++v) {
    index_selected_[v].assign(
        static_cast<size_t>(graph->num_indexes(v)), 0);
  }
}

void SelectionState::ValidateCandidate(const Candidate& c) const {
  OLAPIDX_CHECK(c.view < graph_->num_views());
  OLAPIDX_CHECK(c.add_view || ViewSelected(c.view));
  OLAPIDX_CHECK(!(c.add_view && ViewSelected(c.view)));
  OLAPIDX_CHECK(c.NumStructures() > 0);
  for (int32_t k : c.indexes) {
    OLAPIDX_CHECK(k >= 0 && k < graph_->num_indexes(c.view));
    OLAPIDX_CHECK(!IndexSelected(c.view, k));
  }
}

double SelectionState::CandidateSpace(const Candidate& c) const {
  double space = c.add_view ? graph_->view_space(c.view) : 0.0;
  for (int32_t k : c.indexes) space += graph_->index_space(c.view, k);
  return space;
}

double SelectionState::CandidateBenefit(const Candidate& c) const {
  OLAPIDX_DCHECK((ValidateCandidate(c), true));
  const uint32_t v = c.view;
  const std::vector<uint32_t>& queries = graph_->ViewQueries(v);
  double benefit = 0.0;
  for (size_t pos = 0; pos < queries.size(); ++pos) {
    uint32_t q = queries[pos];
    double current = best_cost_[q];
    // Cheapest way this candidate (with the view, new or pre-selected)
    // could answer q.
    double offered = QueryViewGraph::kInfiniteCost;
    if (c.add_view) {
      offered = graph_->ViewCostAt(v, pos);
    }
    for (int32_t k : c.indexes) {
      offered = std::min(offered, graph_->IndexCostAt(v, k, pos));
    }
    if (offered < current) {
      benefit += graph_->query_frequency(q) * (current - offered);
    }
  }
  return benefit - CandidateMaintenance(c);
}

double SelectionState::CandidateMaintenance(const Candidate& c) const {
  double m = c.add_view ? graph_->structure_maintenance(
                              StructureRef{c.view, StructureRef::kNoIndex})
                        : 0.0;
  for (int32_t k : c.indexes) {
    m += graph_->structure_maintenance(StructureRef{c.view, k});
  }
  return m;
}

void SelectionState::Apply(const Candidate& c) {
  ValidateCandidate(c);
  const uint32_t v = c.view;
  const std::vector<uint32_t>& queries = graph_->ViewQueries(v);
  for (size_t pos = 0; pos < queries.size(); ++pos) {
    uint32_t q = queries[pos];
    double offered = QueryViewGraph::kInfiniteCost;
    if (c.add_view) {
      offered = graph_->ViewCostAt(v, pos);
    }
    for (int32_t k : c.indexes) {
      offered = std::min(offered, graph_->IndexCostAt(v, k, pos));
    }
    if (offered < best_cost_[q]) {
      total_cost_ -= graph_->query_frequency(q) * (best_cost_[q] - offered);
      best_cost_[q] = offered;
      // q got cheaper: every view adjacent to q may now offer less benefit.
      for (uint32_t w : graph_->QueryViews(q)) ++view_version_[w];
    }
  }
  // The candidate's own view always changes (its structures became
  // selected), even when the pick improved no query adjacent to some
  // cached evaluation — e.g. a zero-frequency-only improvement.
  ++view_version_[v];
  space_used_ += CandidateSpace(c);
  maintenance_ += CandidateMaintenance(c);
  if (c.add_view) {
    view_selected_[v] = 1;
    picks_.push_back(StructureRef{v, StructureRef::kNoIndex});
  }
  for (int32_t k : c.indexes) {
    index_selected_[v][static_cast<size_t>(k)] = 1;
    picks_.push_back(StructureRef{v, k});
  }
}

double SelectionState::StructureBenefit(StructureRef s) const {
  Candidate c;
  c.view = s.view;
  if (s.is_view()) {
    c.add_view = true;
  } else {
    c.indexes.push_back(s.index);
  }
  return CandidateBenefit(c);
}

void SelectionState::ApplyStructure(StructureRef s) {
  Candidate c;
  c.view = s.view;
  if (s.is_view()) {
    c.add_view = true;
  } else {
    c.indexes.push_back(s.index);
  }
  Apply(c);
}

Status ReplayPicks(const ResumePicks& resume, SelectionState* state,
                   SelectionResult* result) {
  OLAPIDX_CHECK(state != nullptr && result != nullptr);
  const QueryViewGraph& graph = state->graph();
  if (resume.picks.size() != resume.pick_benefits.size()) {
    return Status::InvalidArgument(
        "checkpoint has " + std::to_string(resume.picks.size()) +
        " picks but " + std::to_string(resume.pick_benefits.size()) +
        " benefits");
  }
  for (size_t i = 0; i < resume.picks.size(); ++i) {
    const StructureRef& ref = resume.picks[i];
    auto fail = [&](const std::string& message) {
      return Status::InvalidArgument("checkpoint pick " +
                                     std::to_string(i + 1) + ": " + message);
    };
    if (ref.view >= graph.num_views()) return fail("view id out of range");
    if (!ref.is_view() &&
        (ref.index < 0 || ref.index >= graph.num_indexes(ref.view))) {
      return fail("index position out of range");
    }
    if (state->Selected(ref)) return fail("structure picked twice");
    if (!ref.is_view() && !state->ViewSelected(ref.view)) {
      return fail("index pick precedes its view");
    }
    state->ApplyStructure(ref);
  }
  result->picks = resume.picks;
  result->pick_benefits = resume.pick_benefits;
  result->stats.stages = resume.stages;
  return Status::Ok();
}

}  // namespace olapidx
