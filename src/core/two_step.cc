#include "core/two_step.h"

#include <algorithm>

#include "core/selection_state.h"

namespace olapidx {

namespace {

// One stage type: repeatedly pick the single best view (is_view_stage) or
// the single best index on a selected view, by benefit per unit space,
// charging the stage's own budget. Returns space consumed by this stage.
double RunSingleStructureStage(const QueryViewGraph& graph,
                               SelectionState& state, bool is_view_stage,
                               double stage_budget, bool strict_fit,
                               SelectionResult& result) {
  double used = 0.0;
  for (;;) {
    if (used >= stage_budget) break;
    double remaining = stage_budget - used;
    bool found = false;
    StructureRef best{};
    double best_ratio = 0.0;
    double best_benefit = 0.0;
    for (uint32_t v = 0; v < graph.num_views(); ++v) {
      if (is_view_stage) {
        if (state.ViewSelected(v)) continue;
        if (strict_fit && graph.view_space(v) > remaining) continue;
        StructureRef s{v, StructureRef::kNoIndex};
        double b = state.StructureBenefit(s);
        ++result.candidates_evaluated;
        if (b <= 0.0) continue;
        double ratio = b / graph.view_space(v);
        if (!found || ratio > best_ratio) {
          found = true;
          best = s;
          best_ratio = ratio;
          best_benefit = b;
        }
      } else {
        if (!state.ViewSelected(v)) continue;
        for (int32_t k = 0; k < graph.num_indexes(v); ++k) {
          if (state.IndexSelected(v, k)) continue;
          if (strict_fit && graph.index_space(v, k) > remaining) continue;
          StructureRef s{v, k};
          double b = state.StructureBenefit(s);
          ++result.candidates_evaluated;
          if (b <= 0.0) continue;
          double ratio = b / graph.index_space(v, k);
          if (!found || ratio > best_ratio) {
            found = true;
            best = s;
            best_ratio = ratio;
            best_benefit = b;
          }
        }
      }
    }
    if (!found) break;
    state.ApplyStructure(best);
    used += graph.structure_space(best);
    result.picks.push_back(best);
    result.pick_benefits.push_back(best_benefit);
  }
  return used;
}

void InitResult(const QueryViewGraph& graph, const SelectionState& state,
                SelectionResult& result) {
  result.initial_cost = state.TotalCost();
  for (uint32_t q = 0; q < graph.num_queries(); ++q) {
    result.total_frequency += graph.query_frequency(q);
  }
}

}  // namespace

SelectionResult HruViewGreedy(const QueryViewGraph& graph,
                              double space_budget, bool strict_fit) {
  OLAPIDX_CHECK(graph.finalized());
  SelectionState state(&graph);
  SelectionResult result;
  InitResult(graph, state, result);
  RunSingleStructureStage(graph, state, /*is_view_stage=*/true, space_budget,
                          strict_fit, result);
  result.space_used = state.SpaceUsed();
  result.final_cost = state.TotalCost();
  result.total_maintenance = state.TotalMaintenance();
  return result;
}

SelectionResult TwoStep(const QueryViewGraph& graph, double space_budget,
                        const TwoStepOptions& options) {
  OLAPIDX_CHECK(graph.finalized());
  OLAPIDX_CHECK(options.index_fraction >= 0.0 &&
                options.index_fraction <= 1.0);
  SelectionState state(&graph);
  SelectionResult result;
  InitResult(graph, state, result);

  double view_budget = space_budget * (1.0 - options.index_fraction);
  double index_budget = space_budget * options.index_fraction;
  RunSingleStructureStage(graph, state, /*is_view_stage=*/true, view_budget,
                          options.strict_fit, result);
  RunSingleStructureStage(graph, state, /*is_view_stage=*/false,
                          index_budget, options.strict_fit, result);

  result.space_used = state.SpaceUsed();
  result.final_cost = state.TotalCost();
  result.total_maintenance = state.TotalMaintenance();
  return result;
}

}  // namespace olapidx
