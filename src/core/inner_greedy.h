// The Inner-level greedy algorithm (Algorithm 5.2).
//
// Each stage builds, for every unselected view, a bundle IG = {view} grown
// by greedily appending the index with the largest incremental benefit, and
// keeps the prefix of the growth sequence with the best benefit per unit
// space; the stage then picks the better of the best bundle and the best
// single index on an already-selected view.
//
// Guarantee 1 − e^−0.63 ≈ 0.467 (between 2- and 3-greedy) at O(k²m²) time;
// the solution uses at most 2·S space (Theorem 5.2).
//
// Determinism contract: each stage picks the maximum under (higher
// benefit-per-space ratio, then lower view id) over all per-view
// candidates — grown bundles for unselected views, single indexes for
// selected ones (within a selected view, the lowest index position wins
// ratio ties). The same order is the parallel reduction's comparator, so
// picks are bit-identical for every thread count and with or without
// memoization.

#ifndef OLAPIDX_CORE_INNER_GREEDY_H_
#define OLAPIDX_CORE_INNER_GREEDY_H_

#include <cstddef>

#include "common/deadline.h"
#include "core/selection_result.h"

namespace olapidx {

struct InnerGreedyOptions {
  // Worker threads for per-view bundle growth: 0 = the process-wide
  // shared pool, 1 = serial, n ≥ 2 = a private pool for this call.
  size_t num_threads = 0;
  // Reuse each view's cached bundle while the view is clean (dirty-set
  // invalidation via SelectionState::ViewVersion); exact, picks are
  // bit-identical with the flag off.
  bool memoize = true;

  // Beam cap on per-stage bundle regrowth (effective with memoize on):
  // dirty views with no certified stale bound are always re-grown, but of
  // the bounded ones only the beam_width with the largest stale bounds;
  // the rest are deferred — excluded from the stage's reduction and
  // accounted in SelectionResult::beam_skipped / beam_stage_factor. If
  // the beam hides every positive candidate the deferred set is grown
  // after all, so a beam run never stops before the exact one would.
  // 0 = unlimited — bit-identical to exact greedy.
  size_t beam_width = 0;

  // Interruption inputs (deadline, cancel token, stage budget), polled at
  // stage boundaries and between per-view evaluations. On interruption
  // the result is the anytime best-so-far prefix: completed == false,
  // status an interruption code, picks equal to the uninterrupted run's
  // first stats.stages stages (determinism contract).
  RunControl control = {};

  // Warm start: replay this pick prefix before the first stage (see
  // RGreedyOptions::resume for the bit-exactness contract). Not owned;
  // must outlive the call.
  const ResumePicks* resume = nullptr;
};

SelectionResult InnerLevelGreedy(const QueryViewGraph& graph,
                                 double space_budget,
                                 const InnerGreedyOptions& options = {});

}  // namespace olapidx

#endif  // OLAPIDX_CORE_INNER_GREEDY_H_
