// The Inner-level greedy algorithm (Algorithm 5.2).
//
// Each stage builds, for every unselected view, a bundle IG = {view} grown
// by greedily appending the index with the largest incremental benefit, and
// keeps the prefix of the growth sequence with the best benefit per unit
// space; the stage then picks the better of the best bundle and the best
// single index on an already-selected view.
//
// Guarantee 1 − e^−0.63 ≈ 0.467 (between 2- and 3-greedy) at O(k²m²) time;
// the solution uses at most 2·S space (Theorem 5.2).

#ifndef OLAPIDX_CORE_INNER_GREEDY_H_
#define OLAPIDX_CORE_INNER_GREEDY_H_

#include "core/selection_result.h"

namespace olapidx {

SelectionResult InnerLevelGreedy(const QueryViewGraph& graph,
                                 double space_budget);

}  // namespace olapidx

#endif  // OLAPIDX_CORE_INNER_GREEDY_H_
