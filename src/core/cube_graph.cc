#include "core/cube_graph.h"

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/graph_build_metrics.h"

namespace olapidx {

namespace {

uint64_t MicrosSince(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

// Walks the r-arrangement tree of `view_mask`'s attributes (children in
// ascending attribute order — the exact order of CubeLattice::FatIndexes /
// AllIndexes) and emits, for each prefix-equivalence class, the contiguous
// rank range [begin, end) of arrangements sharing it, with the class's
// maximal selection-only prefix set. Ranks are relative to `base` (the
// ablation stacks one call per arrangement length r on top of the
// previous lengths' ranks).
//
// The walk only recurses through selection attributes: a child ∉ B seals
// the prefix of its whole subtree, so the subtree collapses to one range
// (consecutive sealed siblings merge into one), and once every remaining
// attribute lies in B — possible only for fat indexes, which consume all
// of them — the subtree collapses to one full-prefix range. Work is
// therefore proportional to the number of emitted classes, not to the
// number of arrangements.
template <typename Emit>
void WalkPrefixClasses(uint32_t view_mask, int m, int r, uint32_t sel,
                       int64_t base, const Emit& emit) {
  // sub[d]: leaves below a depth-d node = A(m-d, r-d) falling factorial.
  int64_t sub[kMaxDimensions + 1];
  sub[r] = 1;
  for (int d = r - 1; d >= 0; --d) sub[d] = sub[d + 1] * (m - d);
  auto rec = [&](auto&& self, int d, uint32_t avail, uint32_t prefix,
                 int64_t rank) -> void {
    if (d == r) {  // complete all-selection arrangement
      emit(rank, rank + 1, prefix);
      return;
    }
    if (r == m && (avail & ~sel) == 0) {  // every completion is all-B
      emit(rank, rank + sub[d], prefix | avail);
      return;
    }
    const int64_t blk = sub[d + 1];
    int64_t run_begin = -1;
    int64_t run_end = 0;
    int i = 0;
    for (uint32_t rest = avail; rest != 0; rest &= rest - 1, ++i) {
      const uint32_t bit = rest & (~rest + 1u);
      const int64_t child = rank + i * blk;
      if ((bit & sel) != 0) {
        if (run_begin >= 0) {
          emit(run_begin, run_end, prefix);
          run_begin = -1;
        }
        self(self, d + 1, avail & ~bit, prefix | bit, child);
      } else {
        if (run_begin < 0) run_begin = child;
        run_end = child + blk;
      }
    }
    if (run_begin >= 0) emit(run_begin, run_end, prefix);
  };
  rec(rec, 0, view_mask, 0u, base);
}

}  // namespace

StatusOr<CubeGraph> TryBuildCubeGraph(const CubeSchema& schema,
                                      const ViewSizes& sizes,
                                      const Workload& workload,
                                      const CubeGraphOptions& options) {
  OLAPIDX_CHECK(sizes.num_dimensions() == schema.num_dimensions());
  OLAPIDX_CHECK(sizes.Complete());
  OLAPIDX_CHECK(options.raw_scan_penalty >= 1.0);
  const int n = schema.num_dimensions();
  if (options.fat_indexes_only && n > 8) {
    return Status::InvalidArgument(
        "fat-index cube graphs support at most 8 dimensions (got n = " +
        std::to_string(n) + "; a dim-8 base view already has 8! = 40320 "
        "fat indexes)");
  }
  if (!options.fat_indexes_only && n > 6) {
    return Status::InvalidArgument(
        "all-ordered-subset (fat-index-pruning ablation) cube graphs "
        "support at most 6 dimensions (got n = " +
        std::to_string(n) + ")");
  }

  OLAPIDX_TRACE_SPAN("graph_build");
  const auto build_start = std::chrono::steady_clock::now();
  graph_build_metrics::BuildStats stats;

  CubeLattice lattice(schema);
  const uint32_t nv = lattice.num_views();
  // Hoisted size lookups: one per view, shared by view space, index space,
  // maintenance, scan costs, and every prefix-class evaluation (a class's
  // prefix is itself a view mask).
  std::vector<double> view_size(nv);
  for (uint32_t v = 0; v < nv; ++v) {
    view_size[v] = sizes.SizeOf(AttributeSet::FromMask(v));
  }

  CubeGraph out;
  QueryViewGraph& g = out.graph;
  g.SetNameDictionary(schema.names());
  out.view_attrs.reserve(nv);
  out.index_keys.reserve(nv);

  {
    OLAPIDX_TRACE_SPAN("graph_build.structures");
    for (ViewId v = 0; v < nv; ++v) {
      AttributeSet attrs = lattice.AttrsOf(v);
      uint32_t gv = g.AddView(attrs.ToString(schema.names()), view_size[v]);
      OLAPIDX_CHECK(gv == v);
      out.view_attrs.push_back(attrs);
      double maintenance = options.maintenance_per_row > 0.0
                               ? options.maintenance_per_row * view_size[v]
                               : 0.0;
      if (maintenance > 0.0) g.SetViewMaintenance(gv, maintenance);
      std::vector<IndexKey> keys = options.fat_indexes_only
                                       ? lattice.FatIndexes(v)
                                       : lattice.AllIndexes(v);
      g.AddIndexes(gv, keys, view_size[v], maintenance);
      out.index_keys.push_back(std::move(keys));
    }
  }

  const double default_cost =
      options.default_query_cost > 0.0
          ? options.default_query_cost
          : options.raw_scan_penalty * sizes[lattice.BaseView()];
  const std::vector<WeightedQuery>& wqs = workload.queries();
  for (const WeightedQuery& wq : wqs) {
    g.AddQuery(wq.query.ToString(schema.names()), default_cost,
               wq.frequency);
    out.queries.push_back(wq.query);
  }

  // Edge enumeration: queries partitioned into contiguous chunks, one run
  // buffer per chunk. Chunk boundaries depend only on (|W|, thread count)
  // and each run's content only on its query, so the merged edge set — and,
  // because Finalize() min-merges labels per (view, query, index) slot —
  // the finalized graph is identical for every thread count.
  std::optional<ThreadPool> local_pool;
  if (options.num_threads > 0) local_pool.emplace(options.num_threads);
  ThreadPool& pool = local_pool ? *local_pool : ThreadPool::Shared();
  const size_t num_chunks = pool.num_threads();
  std::vector<std::vector<EdgeRun>> shard(num_chunks);
  struct ChunkCounters {
    uint64_t view_pairs = 0;
    uint64_t prefix_classes = 0;
    uint64_t index_edges = 0;
    uint64_t perms_skipped = 0;
  };
  std::vector<ChunkCounters> counters(num_chunks);
  const AttributeSet full = AttributeSet::Full(n);
  {
    OLAPIDX_TRACE_SPAN("graph_build.edges");
    pool.ParallelFor(
        wqs.size(), [&](size_t begin, size_t end, size_t chunk) {
          std::vector<EdgeRun>& runs = shard[chunk];
          ChunkCounters& cc = counters[chunk];
          for (size_t qi = begin; qi < end; ++qi) {
            const SliceQuery& query = wqs[qi].query;
            const uint32_t q = static_cast<uint32_t>(qi);
            const uint32_t sel = query.selection().mask();
            for (AttributeSet cset :
                 query.AllAttributes().SupersetsWithin(full)) {
              const uint32_t c = cset.mask();
              const double scan = view_size[c];
              runs.push_back(EdgeRun{q, c, StructureRef::kNoIndex,
                                     StructureRef::kNoIndex, scan});
              ++cc.view_pairs;
              const int m = cset.size();
              if (m == 0) continue;  // the apex view has no indexes
              // A query's index costs from view C depend only on B ∩ C
              // (every prefix E is a subset of C), so queries agreeing on
              // that intersection share one dense column; tag runs with it
              // so Finalize() expands each distinct column once per view.
              const uint32_t col = (sel & c) + 1;
              auto emit = [&](int64_t rb, int64_t re, uint32_t prefix) {
                ++cc.prefix_classes;
                const double cost = view_size[c] / view_size[prefix];
                if (cost < scan) {
                  runs.push_back(EdgeRun{q, c, static_cast<int32_t>(rb),
                                         static_cast<int32_t>(re), cost, col});
                  cc.index_edges += static_cast<uint64_t>(re - rb);
                } else {
                  cc.perms_skipped += static_cast<uint64_t>(re - rb);
                }
              };
              if (options.fat_indexes_only) {
                WalkPrefixClasses(c, m, m, sel, 0, emit);
              } else {
                int64_t offset = 0;
                int64_t arrangements = 1;
                for (int r = 1; r <= m; ++r) {
                  arrangements *= m - (r - 1);  // A(m, r)
                  WalkPrefixClasses(c, m, r, sel, offset, emit);
                  offset += arrangements;
                }
              }
            }
          }
        });
  }
  for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
    g.AddEdgeRuns(std::move(shard[chunk]));
    stats.view_pairs += counters[chunk].view_pairs;
    stats.prefix_classes += counters[chunk].prefix_classes;
    stats.index_edges += counters[chunk].index_edges;
    stats.perms_skipped += counters[chunk].perms_skipped;
  }
  stats.enumerate_micros = MicrosSince(build_start);

  const auto finalize_start = std::chrono::steady_clock::now();
  {
    OLAPIDX_TRACE_SPAN("graph_build.finalize");
    g.Finalize();
  }
  stats.finalize_micros = MicrosSince(finalize_start);

  stats.views = nv;
  stats.structures = g.num_structures();
  stats.queries = g.num_queries();
  stats.total_micros = MicrosSince(build_start);
  graph_build_metrics::RecordBuild(stats);
  return out;
}

CubeGraph BuildCubeGraph(const CubeSchema& schema, const ViewSizes& sizes,
                         const Workload& workload,
                         const CubeGraphOptions& options) {
  StatusOr<CubeGraph> built =
      TryBuildCubeGraph(schema, sizes, workload, options);
  if (!built.ok()) {
    internal::CheckFailed(__FILE__, __LINE__,
                          built.status().ToString().c_str());
  }
  return *std::move(built);
}

// The pre-optimization builder, kept verbatim (modulo the Status wrapper
// around the dimension limits) as the differential oracle: every view is
// tested per query, every permutation is costed individually, and every
// index name is materialized eagerly.
CubeGraph BuildCubeGraphReference(const CubeSchema& schema,
                                  const ViewSizes& sizes,
                                  const Workload& workload,
                                  const CubeGraphOptions& options) {
  OLAPIDX_CHECK(sizes.num_dimensions() == schema.num_dimensions());
  OLAPIDX_CHECK(sizes.Complete());
  CubeLattice lattice(schema);
  LinearCostModel cost(&sizes);

  CubeGraph out;
  QueryViewGraph& g = out.graph;

  // Views and their indexes. Graph view ids coincide with lattice ViewIds
  // because we add them in mask order.
  for (ViewId v = 0; v < lattice.num_views(); ++v) {
    AttributeSet attrs = lattice.AttrsOf(v);
    uint32_t gv = g.AddView(attrs.ToString(schema.names()),
                            cost.ViewSpace(attrs));
    OLAPIDX_CHECK(gv == v);
    out.view_attrs.push_back(attrs);
    if (options.maintenance_per_row > 0.0) {
      g.SetViewMaintenance(gv,
                           options.maintenance_per_row *
                               cost.ViewSpace(attrs));
    }
    std::vector<IndexKey> keys = options.fat_indexes_only
                                     ? lattice.FatIndexes(v)
                                     : lattice.AllIndexes(v);
    for (const IndexKey& key : keys) {
      int32_t gi = g.AddIndex(gv, key.ToString(schema.names()),
                              cost.IndexSpace(attrs));
      if (options.maintenance_per_row > 0.0) {
        g.SetIndexMaintenance(gv, gi,
                              options.maintenance_per_row *
                                  cost.IndexSpace(attrs));
      }
    }
    out.index_keys.push_back(std::move(keys));
  }

  // Queries: default cost is a scan of the raw data, modelled as the base
  // view's row count (Section 5.1: "the cost incurred in answering the
  // query using the raw data table").
  OLAPIDX_CHECK(options.raw_scan_penalty >= 1.0);
  double default_cost =
      options.default_query_cost > 0.0
          ? options.default_query_cost
          : options.raw_scan_penalty * sizes[lattice.BaseView()];
  for (const WeightedQuery& wq : workload.queries()) {
    uint32_t q = g.AddQuery(wq.query.ToString(schema.names()), default_cost,
                            wq.frequency);
    out.queries.push_back(wq.query);

    // One k=0 edge per answering view, plus one edge per index whose
    // prefix actually reduces the cost below a scan.
    for (ViewId v = 0; v < lattice.num_views(); ++v) {
      AttributeSet view_attrs = lattice.AttrsOf(v);
      if (!wq.query.AnswerableFrom(view_attrs)) continue;
      double scan = cost.ScanCost(view_attrs);
      g.AddViewEdge(q, v, scan);
      const std::vector<IndexKey>& keys = out.index_keys[v];
      for (size_t k = 0; k < keys.size(); ++k) {
        double c = cost.QueryCost(wq.query, view_attrs, keys[k]);
        if (c < scan) {
          g.AddIndexEdge(q, v, static_cast<int32_t>(k), c);
        }
      }
    }
  }

  g.Finalize();
  return out;
}

}  // namespace olapidx
