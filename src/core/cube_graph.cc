#include "core/cube_graph.h"

#include <string>
#include <utility>
#include <vector>

#include "core/lattice_graph_builder.h"

namespace olapidx {

namespace {

// The flat-cube LatticeProvider: views are attribute-set masks (graph view
// id == lattice ViewId == mask), a query's answering views are the
// supersets of A ∪ B, and index costs come from the paper's
// c(Q,V,J) = |C| / |E| with E the maximal selection-only key prefix.
// This is the one-level-per-dimension special case of the generic path —
// the hierarchical provider in hierarchy/hierarchical_graph.cc degenerates
// to exactly this graph when every dimension has a single level.
struct CubeLatticeProvider {
  const CubeSchema* schema;
  const ViewSizes* sizes;
  const Workload* workload;
  const CubeGraphOptions* options;
  const CubeLattice* lattice;
  CubeGraph* out;

  struct Ctx {
    const SliceQuery* query = nullptr;
    uint32_t sel = 0;
    AttributeSet full;
  };

  uint32_t num_views() const { return lattice->num_views(); }
  uint32_t BaseView() const { return lattice->BaseView(); }
  double ViewSizeOf(uint32_t v) const {
    return sizes->SizeOf(AttributeSet::FromMask(v));
  }

  void InitGraph(QueryViewGraph& g) const {
    g.SetNameDictionary(schema->names());
  }

  void AddStructures(QueryViewGraph& g, uint32_t v, double size,
                     double maintenance) const {
    AttributeSet attrs = lattice->AttrsOf(v);
    uint32_t gv = g.AddView(attrs.ToString(schema->names()), size);
    OLAPIDX_CHECK(gv == v);
    out->view_attrs.push_back(attrs);
    if (maintenance > 0.0) g.SetViewMaintenance(gv, maintenance);
    std::vector<IndexKey> keys = options->fat_indexes_only
                                     ? lattice->FatIndexes(v)
                                     : lattice->AllIndexes(v);
    g.AddIndexes(gv, keys, size, maintenance);
    out->index_keys.push_back(std::move(keys));
  }

  size_t num_queries() const { return workload->queries().size(); }

  void AddQuery(QueryViewGraph& g, size_t qi, double default_cost) const {
    const WeightedQuery& wq = workload->queries()[qi];
    g.AddQuery(wq.query.ToString(schema->names()), default_cost,
               wq.frequency);
    out->queries.push_back(wq.query);
  }

  Ctx MakeQueryContext() const {
    Ctx ctx;
    ctx.full = AttributeSet::Full(schema->num_dimensions());
    return ctx;
  }

  void BeginQuery(Ctx& ctx, size_t qi) const {
    ctx.query = &workload->queries()[qi].query;
    ctx.sel = ctx.query->selection().mask();
  }

  template <typename Visit>
  void ForEachAnsweringView(Ctx& ctx, Visit&& visit) const {
    for (AttributeSet cset :
         ctx.query->AllAttributes().SupersetsWithin(ctx.full)) {
      visit(cset.mask());
    }
  }

  uint32_t IndexColumnClass(const Ctx& ctx, uint32_t v) const {
    if (v == 0) return 0;  // the apex view has no indexes
    // A query's index costs from view C depend only on B ∩ C (every prefix
    // E is a subset of C), so queries agreeing on that intersection share
    // one dense column; tag runs with it so Finalize() expands each
    // distinct column once per view.
    return (ctx.sel & v) + 1;
  }

  template <typename Emit>
  void ForEachIndexCostClass(const Ctx& ctx, uint32_t v,
                             const double* view_size, Emit&& emit) const {
    const int m = AttributeSet::FromMask(v).size();
    auto cost_emit = [&](int64_t rb, int64_t re, uint32_t prefix) {
      emit(rb, re, view_size[prefix]);  // |E| rows; the builder applies the model
    };
    if (options->fat_indexes_only) {
      WalkPrefixClasses(v, m, m, ctx.sel, 0, cost_emit);
    } else {
      int64_t offset = 0;
      int64_t arrangements = 1;
      for (int r = 1; r <= m; ++r) {
        arrangements *= m - (r - 1);  // A(m, r)
        WalkPrefixClasses(v, m, r, ctx.sel, offset, cost_emit);
        offset += arrangements;
      }
    }
  }
};

}  // namespace

StatusOr<CubeGraph> TryBuildCubeGraph(const CubeSchema& schema,
                                      const ViewSizes& sizes,
                                      const Workload& workload,
                                      const CubeGraphOptions& options) {
  OLAPIDX_CHECK(sizes.num_dimensions() == schema.num_dimensions());
  OLAPIDX_CHECK(sizes.Complete());
  OLAPIDX_CHECK(options.raw_scan_penalty >= 1.0);
  const int n = schema.num_dimensions();
  if (options.fat_indexes_only && n > 8) {
    return Status::InvalidArgument(
        "fat-index cube graphs support at most 8 dimensions (got n = " +
        std::to_string(n) + "; a dim-8 base view already has 8! = 40320 "
        "fat indexes)");
  }
  if (!options.fat_indexes_only && n > 6) {
    return Status::InvalidArgument(
        "all-ordered-subset (fat-index-pruning ablation) cube graphs "
        "support at most 6 dimensions (got n = " +
        std::to_string(n) + ")");
  }

  CubeLattice lattice(schema);
  CubeGraph out;
  out.view_attrs.reserve(lattice.num_views());
  out.index_keys.reserve(lattice.num_views());

  CubeLatticeProvider provider{&schema,  &sizes,   &workload,
                               &options, &lattice, &out};
  LatticeGraphOptions build;
  build.default_query_cost = options.default_query_cost;
  build.raw_scan_penalty = options.raw_scan_penalty;
  build.maintenance_per_row = options.maintenance_per_row;
  build.num_threads = options.num_threads;
  build.cost_model = options.cost_model.get();
  BuildLatticeGraph(provider, build, out.graph);
  return out;
}

CubeGraph BuildCubeGraph(const CubeSchema& schema, const ViewSizes& sizes,
                         const Workload& workload,
                         const CubeGraphOptions& options) {
  StatusOr<CubeGraph> built =
      TryBuildCubeGraph(schema, sizes, workload, options);
  if (!built.ok()) {
    internal::CheckFailed(__FILE__, __LINE__,
                          built.status().ToString().c_str());
  }
  return *std::move(built);
}

// The pre-optimization builder, kept verbatim (modulo the Status wrapper
// around the dimension limits) as the differential oracle: every view is
// tested per query, every permutation is costed individually, and every
// index name is materialized eagerly.
CubeGraph BuildCubeGraphReference(const CubeSchema& schema,
                                  const ViewSizes& sizes,
                                  const Workload& workload,
                                  const CubeGraphOptions& options) {
  OLAPIDX_CHECK(sizes.num_dimensions() == schema.num_dimensions());
  OLAPIDX_CHECK(sizes.Complete());
  CubeLattice lattice(schema);
  LinearCostModel cost(&sizes);

  CubeGraph out;
  QueryViewGraph& g = out.graph;

  // Views and their indexes. Graph view ids coincide with lattice ViewIds
  // because we add them in mask order.
  for (ViewId v = 0; v < lattice.num_views(); ++v) {
    AttributeSet attrs = lattice.AttrsOf(v);
    uint32_t gv = g.AddView(attrs.ToString(schema.names()),
                            cost.ViewSpace(attrs));
    OLAPIDX_CHECK(gv == v);
    out.view_attrs.push_back(attrs);
    if (options.maintenance_per_row > 0.0) {
      g.SetViewMaintenance(gv,
                           options.maintenance_per_row *
                               cost.ViewSpace(attrs));
    }
    std::vector<IndexKey> keys = options.fat_indexes_only
                                     ? lattice.FatIndexes(v)
                                     : lattice.AllIndexes(v);
    for (const IndexKey& key : keys) {
      int32_t gi = g.AddIndex(gv, key.ToString(schema.names()),
                              cost.IndexSpace(attrs));
      if (options.maintenance_per_row > 0.0) {
        g.SetIndexMaintenance(gv, gi,
                              options.maintenance_per_row *
                                  cost.IndexSpace(attrs));
      }
    }
    out.index_keys.push_back(std::move(keys));
  }

  // Queries: default cost is a scan of the raw data, modelled as the base
  // view's row count (Section 5.1: "the cost incurred in answering the
  // query using the raw data table").
  OLAPIDX_CHECK(options.raw_scan_penalty >= 1.0);
  double default_cost =
      options.default_query_cost > 0.0
          ? options.default_query_cost
          : options.raw_scan_penalty * sizes[lattice.BaseView()];
  for (const WeightedQuery& wq : workload.queries()) {
    uint32_t q = g.AddQuery(wq.query.ToString(schema.names()), default_cost,
                            wq.frequency);
    out.queries.push_back(wq.query);

    // One k=0 edge per answering view, plus one edge per index whose
    // prefix actually reduces the cost below a scan.
    for (ViewId v = 0; v < lattice.num_views(); ++v) {
      AttributeSet view_attrs = lattice.AttrsOf(v);
      if (!wq.query.AnswerableFrom(view_attrs)) continue;
      double scan = cost.ScanCost(view_attrs);
      g.AddViewEdge(q, v, scan);
      const std::vector<IndexKey>& keys = out.index_keys[v];
      for (size_t k = 0; k < keys.size(); ++k) {
        double c = cost.QueryCost(wq.query, view_attrs, keys[k]);
        if (c < scan) {
          g.AddIndexEdge(q, v, static_cast<int32_t>(k), c);
        }
      }
    }
  }

  g.Finalize();
  return out;
}

}  // namespace olapidx
