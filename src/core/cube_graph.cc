#include "core/cube_graph.h"

namespace olapidx {

CubeGraph BuildCubeGraph(const CubeSchema& schema, const ViewSizes& sizes,
                         const Workload& workload,
                         const CubeGraphOptions& options) {
  OLAPIDX_CHECK(sizes.num_dimensions() == schema.num_dimensions());
  OLAPIDX_CHECK(sizes.Complete());
  CubeLattice lattice(schema);
  LinearCostModel cost(&sizes);

  CubeGraph out;
  QueryViewGraph& g = out.graph;

  // Views and their indexes. Graph view ids coincide with lattice ViewIds
  // because we add them in mask order.
  for (ViewId v = 0; v < lattice.num_views(); ++v) {
    AttributeSet attrs = lattice.AttrsOf(v);
    uint32_t gv = g.AddView(attrs.ToString(schema.names()),
                            cost.ViewSpace(attrs));
    OLAPIDX_CHECK(gv == v);
    out.view_attrs.push_back(attrs);
    if (options.maintenance_per_row > 0.0) {
      g.SetViewMaintenance(gv,
                           options.maintenance_per_row *
                               cost.ViewSpace(attrs));
    }
    std::vector<IndexKey> keys = options.fat_indexes_only
                                     ? lattice.FatIndexes(v)
                                     : lattice.AllIndexes(v);
    for (const IndexKey& key : keys) {
      int32_t gi = g.AddIndex(gv, key.ToString(schema.names()),
                              cost.IndexSpace(attrs));
      if (options.maintenance_per_row > 0.0) {
        g.SetIndexMaintenance(gv, gi,
                              options.maintenance_per_row *
                                  cost.IndexSpace(attrs));
      }
    }
    out.index_keys.push_back(std::move(keys));
  }

  // Queries: default cost is a scan of the raw data, modelled as the base
  // view's row count (Section 5.1: "the cost incurred in answering the
  // query using the raw data table").
  OLAPIDX_CHECK(options.raw_scan_penalty >= 1.0);
  double default_cost =
      options.default_query_cost > 0.0
          ? options.default_query_cost
          : options.raw_scan_penalty * sizes[lattice.BaseView()];
  for (const WeightedQuery& wq : workload.queries()) {
    uint32_t q = g.AddQuery(wq.query.ToString(schema.names()), default_cost,
                            wq.frequency);
    out.queries.push_back(wq.query);

    // One k=0 edge per answering view, plus one edge per index whose
    // prefix actually reduces the cost below a scan.
    for (ViewId v = 0; v < lattice.num_views(); ++v) {
      AttributeSet view_attrs = lattice.AttrsOf(v);
      if (!wq.query.AnswerableFrom(view_attrs)) continue;
      double scan = cost.ScanCost(view_attrs);
      g.AddViewEdge(q, v, scan);
      const std::vector<IndexKey>& keys = out.index_keys[v];
      for (size_t k = 0; k < keys.size(); ++k) {
        double c = cost.QueryCost(wq.query, view_attrs, keys[k]);
        if (c < scan) {
          g.AddIndexEdge(q, v, static_cast<int32_t>(k), c);
        }
      }
    }
  }

  g.Finalize();
  return out;
}

}  // namespace olapidx
