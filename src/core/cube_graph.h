// BuildCubeGraph: instantiates the Section 5.1 query-view graph for a data
// cube — views = all 2^n subcubes, indexes = fat indexes (or, for the
// pruning ablation, all ordered-subset indexes), queries = a slice-query
// workload, edge costs from the linear cost model.

#ifndef OLAPIDX_CORE_CUBE_GRAPH_H_
#define OLAPIDX_CORE_CUBE_GRAPH_H_

#include <vector>

#include "core/query_view_graph.h"
#include "cost/linear_cost_model.h"
#include "cost/view_sizes.h"
#include "lattice/cube_lattice.h"
#include "lattice/schema.h"
#include "workload/workload.h"

namespace olapidx {

struct CubeGraphOptions {
  // If true (the paper's default), only fat indexes — permutations of the
  // full view attribute set — are considered (Section 4.2.2's pruning).
  // If false, every ordered subset of the view's attributes becomes an
  // index (the ablation showing the pruning is lossless).
  bool fat_indexes_only = true;

  // The default cost T_i of answering a query from raw data. If <= 0, it is
  // raw_scan_penalty × (base view size).
  double default_query_cost = 0.0;

  // Update-aware extension: maintenance cost charged per row of each
  // selected structure (refreshing a materialized subcube or B-tree after
  // base-data updates costs work proportional to its size). 0 reproduces
  // the paper's space-only model exactly.
  double maintenance_per_row = 0.0;

  // Multiplier on the base view's size used for the default cost. The
  // paper's raw data is the *normalized* TPC-D schema, so answering a query
  // from it costs join work on top of the scan; any penalty > 1 makes
  // materializing the base cube worthwhile (as in every trace in the
  // paper), and the final query costs are penalty-invariant once every
  // query's chosen plan beats raw.
  double raw_scan_penalty = 1.0;
};

// A cube-instantiated query-view graph plus the metadata needed to map graph
// ids back to cube objects (for reporting and for the execution engine).
struct CubeGraph {
  QueryViewGraph graph;
  // graph view id -> subcube attribute set.
  std::vector<AttributeSet> view_attrs;
  // graph view id -> index position -> index key.
  std::vector<std::vector<IndexKey>> index_keys;
  // graph query id -> slice query.
  std::vector<SliceQuery> queries;
};

CubeGraph BuildCubeGraph(const CubeSchema& schema, const ViewSizes& sizes,
                         const Workload& workload,
                         const CubeGraphOptions& options = {});

}  // namespace olapidx

#endif  // OLAPIDX_CORE_CUBE_GRAPH_H_
