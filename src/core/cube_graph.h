// BuildCubeGraph: instantiates the Section 5.1 query-view graph for a data
// cube — views = all 2^n subcubes, indexes = fat indexes (or, for the
// pruning ablation, all ordered-subset indexes), queries = a slice-query
// workload, edge costs from the linear cost model.

#ifndef OLAPIDX_CORE_CUBE_GRAPH_H_
#define OLAPIDX_CORE_CUBE_GRAPH_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/query_view_graph.h"
#include "cost/cost_model.h"
#include "cost/linear_cost_model.h"
#include "cost/view_sizes.h"
#include "lattice/cube_lattice.h"
#include "lattice/schema.h"
#include "workload/workload.h"

namespace olapidx {

struct CubeGraphOptions {
  // If true (the paper's default), only fat indexes — permutations of the
  // full view attribute set — are considered (Section 4.2.2's pruning).
  // If false, every ordered subset of the view's attributes becomes an
  // index (the ablation showing the pruning is lossless).
  bool fat_indexes_only = true;

  // The default cost T_i of answering a query from raw data. If <= 0, it is
  // raw_scan_penalty × (base view size).
  double default_query_cost = 0.0;

  // Update-aware extension: maintenance cost charged per row of each
  // selected structure (refreshing a materialized subcube or B-tree after
  // base-data updates costs work proportional to its size). 0 reproduces
  // the paper's space-only model exactly.
  double maintenance_per_row = 0.0;

  // Multiplier on the base view's size used for the default cost. The
  // paper's raw data is the *normalized* TPC-D schema, so answering a query
  // from it costs join work on top of the scan; any penalty > 1 makes
  // materializing the base cube worthwhile (as in every trace in the
  // paper), and the final query costs are penalty-invariant once every
  // query's chosen plan beats raw.
  double raw_scan_penalty = 1.0;

  // Threads for the edge-enumeration phase of the fast builder. 0 uses the
  // shared pool (OLAPIDX_THREADS / hardware concurrency); any value > 0
  // builds with a dedicated pool of that size. The resulting graph is
  // identical for every thread count.
  size_t num_threads = 0;

  // Cost model charging every edge. Null means the paper's linear model
  // (bit-identical to the historical hard-coded |C|/|E| path). Shared so
  // long-lived holders (Advisor, service) keep the model alive past the
  // options struct.
  std::shared_ptr<const CostModel> cost_model = nullptr;
};

// A cube-instantiated query-view graph plus the metadata needed to map graph
// ids back to cube objects (for reporting and for the execution engine).
struct CubeGraph {
  QueryViewGraph graph;
  // graph view id -> subcube attribute set.
  std::vector<AttributeSet> view_attrs;
  // graph view id -> index position -> index key.
  std::vector<std::vector<IndexKey>> index_keys;
  // graph query id -> slice query.
  std::vector<SliceQuery> queries;
};

// Fast builder: per query, only the views C ⊇ A∪B are visited (ascending
// submask-complement walk), each view's fat indexes are costed once per
// prefix-equivalence class (the cost c(Q,V,J) = |C|/|E| depends only on the
// set E, the maximal selection-only prefix) and emitted as contiguous rank
// runs, and queries are partitioned across a thread pool with per-shard
// run buffers merged deterministically. The machinery is the generic
// provider-parameterized BuildLatticeGraph (core/lattice_graph_builder.h),
// shared with the hierarchical builder; this entry point supplies the flat
// 2^n-lattice provider. Returns InvalidArgument for n > 8
// with fat_indexes_only (n > 6 for the ablation) instead of aborting.
StatusOr<CubeGraph> TryBuildCubeGraph(const CubeSchema& schema,
                                      const ViewSizes& sizes,
                                      const Workload& workload,
                                      const CubeGraphOptions& options = {});

// TryBuildCubeGraph that aborts on error (the historical signature; every
// in-tree caller passes dimensions within the supported range).
CubeGraph BuildCubeGraph(const CubeSchema& schema, const ViewSizes& sizes,
                         const Workload& workload,
                         const CubeGraphOptions& options = {});

// The original serial triple-loop builder, retained verbatim as the
// differential oracle for the fast path (tests) and as the baseline for
// bench_graph_build. Produces a bit-identical CubeGraph.
CubeGraph BuildCubeGraphReference(const CubeSchema& schema,
                                  const ViewSizes& sizes,
                                  const Workload& workload,
                                  const CubeGraphOptions& options = {});

}  // namespace olapidx

#endif  // OLAPIDX_CORE_CUBE_GRAPH_H_
