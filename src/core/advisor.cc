#include "core/advisor.h"

#include <algorithm>
#include <string>
#include <utility>

namespace olapidx {

namespace {

// Resolves a checkpoint's cube-level picks (attribute sets, keys) to this
// graph's StructureRefs. Fails on any pick that does not exist in the
// graph — e.g. a checkpoint taken with a different schema or index family.
Status ResolveCheckpoint(const SelectionCheckpoint& checkpoint,
                         const CubeGraph& cube_graph, ResumePicks* out) {
  out->picks.clear();
  out->pick_benefits = checkpoint.pick_benefits;
  out->stages = checkpoint.stages;
  for (size_t i = 0; i < checkpoint.picks.size(); ++i) {
    const RecommendedStructure& s = checkpoint.picks[i];
    auto fail = [&](const std::string& message) {
      return Status::InvalidArgument("checkpoint pick " +
                                     std::to_string(i + 1) + ": " + message);
    };
    uint32_t view = 0;
    bool view_found = false;
    for (uint32_t v = 0;
         v < static_cast<uint32_t>(cube_graph.view_attrs.size()); ++v) {
      if (cube_graph.view_attrs[v] == s.view) {
        view = v;
        view_found = true;
        break;
      }
    }
    if (!view_found) return fail("view not in the cube lattice");
    if (s.is_view()) {
      out->picks.push_back(StructureRef{view, StructureRef::kNoIndex});
      continue;
    }
    const std::vector<IndexKey>& keys = cube_graph.index_keys[view];
    int32_t index = -1;
    for (size_t k = 0; k < keys.size(); ++k) {
      if (keys[k] == s.index) {
        index = static_cast<int32_t>(k);
        break;
      }
    }
    if (index < 0) {
      return fail("index key not in the view's index family");
    }
    out->picks.push_back(StructureRef{view, index});
  }
  return Status::Ok();
}

Recommendation RejectedRecommendation(Status status) {
  Recommendation rec;
  rec.raw = SelectionResult::Rejected(std::move(status));
  rec.status = rec.raw.status;
  rec.completed = false;
  return rec;
}

}  // namespace

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kOneGreedy:
      return "1-greedy";
    case Algorithm::kRGreedy:
      return "r-greedy";
    case Algorithm::kInnerLevel:
      return "inner-level greedy";
    case Algorithm::kTwoStep:
      return "two-step";
    case Algorithm::kHruViewsOnly:
      return "HRU views-only greedy";
    case Algorithm::kOptimal:
      return "branch-and-bound optimal";
  }
  return "unknown";
}

Advisor::Advisor(const CubeSchema& schema, const ViewSizes& sizes,
                 const Workload& workload, const CubeGraphOptions& options)
    : schema_(schema),
      sizes_(sizes),
      workload_(workload),
      cube_graph_(BuildCubeGraph(schema, sizes, workload, options)),
      graph_fingerprint_(cube_graph_.graph.Fingerprint()),
      cost_model_(options.cost_model) {}

Advisor::Advisor(const CubeSchema& schema, const ViewSizes& sizes,
                 const Workload& workload, CubeGraph cube_graph)
    : schema_(schema),
      sizes_(sizes),
      workload_(workload),
      cube_graph_(std::move(cube_graph)),
      graph_fingerprint_(cube_graph_.graph.Fingerprint()) {}

StatusOr<Advisor> Advisor::Create(const CubeSchema& schema,
                                  const ViewSizes& sizes,
                                  const Workload& workload,
                                  const CubeGraphOptions& options) {
  StatusOr<CubeGraph> cube_graph =
      TryBuildCubeGraph(schema, sizes, workload, options);
  if (!cube_graph.ok()) {
    return cube_graph.status().WithContext("building the query-view graph");
  }
  Advisor advisor(schema, sizes, workload, *std::move(cube_graph));
  advisor.cost_model_ = options.cost_model;
  return advisor;
}

StatusOr<Advisor> Advisor::CreateSparse(const CubeSchema& schema,
                                        const ViewSizes& sizes,
                                        const Workload& workload,
                                        const SparseCubeGraphOptions& options) {
  StatusOr<SparseCubeGraph> sparse =
      TryBuildSparseCubeGraph(schema, sizes, workload, options);
  if (!sparse.ok()) {
    return sparse.status().WithContext("building the sparse query-view graph");
  }
  Advisor advisor(schema, sizes, workload, std::move(sparse->cube));
  advisor.sparse_stats_ = std::move(sparse->stats);
  advisor.cost_model_ = options.cost_model;
  return advisor;
}

Recommendation Advisor::Recommend(const AdvisorConfig& config) const {
  const bool greedy = config.algorithm == Algorithm::kOneGreedy ||
                      config.algorithm == Algorithm::kRGreedy ||
                      config.algorithm == Algorithm::kInnerLevel;
  if (!greedy && !config.control.unlimited()) {
    return RejectedRecommendation(Status::Unimplemented(
        std::string(AlgorithmName(config.algorithm)) +
        " has no anytime contract; deadlines/cancellation require a greedy "
        "algorithm"));
  }
  if (!greedy && config.resume != nullptr) {
    return RejectedRecommendation(Status::InvalidArgument(
        std::string(AlgorithmName(config.algorithm)) +
        " cannot resume from a checkpoint"));
  }

  ResumePicks resume;
  const ResumePicks* resume_ptr = nullptr;
  if (config.resume != nullptr) {
    const SelectionCheckpoint& cp = *config.resume;
    if (cp.algorithm != AlgorithmName(config.algorithm)) {
      return RejectedRecommendation(Status::InvalidArgument(
          "checkpoint was taken by '" + cp.algorithm + "', not '" +
          AlgorithmName(config.algorithm) +
          "'; resuming would not reproduce the original pick sequence"));
    }
    if (cp.space_budget != config.space_budget) {
      return RejectedRecommendation(Status::InvalidArgument(
          "checkpoint budget " + std::to_string(cp.space_budget) +
          " does not match configured budget " +
          std::to_string(config.space_budget)));
    }
    if (cp.graph_fingerprint != 0 &&
        cp.graph_fingerprint != graph_fingerprint_) {
      return RejectedRecommendation(Status::FailedPrecondition(
          "checkpoint was taken against a different query-view graph "
          "(checkpoint graph fingerprint does not match this advisor's); "
          "rebuild with the same schema, sizes, workload, and options, or "
          "start a fresh selection"));
    }
    Status resolved = ResolveCheckpoint(cp, cube_graph_, &resume);
    if (!resolved.ok()) return RejectedRecommendation(std::move(resolved));
    resume_ptr = &resume;
  }

  SelectionResult result;
  switch (config.algorithm) {
    case Algorithm::kOneGreedy: {
      // Same knobs as kRGreedy (threads, memoization, lazy CELF, subset
      // cap) with r forced to 1; a default-constructed options object
      // here used to silently drop config.r_greedy.num_threads & co.
      RGreedyOptions options = config.r_greedy;
      options.r = 1;
      if (!config.control.unlimited()) options.control = config.control;
      if (resume_ptr != nullptr) options.resume = resume_ptr;
      result = RGreedy(cube_graph_.graph, config.space_budget, options);
      break;
    }
    case Algorithm::kRGreedy: {
      RGreedyOptions options = config.r_greedy;
      if (!config.control.unlimited()) options.control = config.control;
      if (resume_ptr != nullptr) options.resume = resume_ptr;
      result = RGreedy(cube_graph_.graph, config.space_budget, options);
      break;
    }
    case Algorithm::kInnerLevel: {
      InnerGreedyOptions options = config.inner_greedy;
      if (!config.control.unlimited()) options.control = config.control;
      if (resume_ptr != nullptr) options.resume = resume_ptr;
      result = InnerLevelGreedy(cube_graph_.graph, config.space_budget,
                                options);
      break;
    }
    case Algorithm::kTwoStep:
      result = TwoStep(cube_graph_.graph, config.space_budget,
                       config.two_step);
      break;
    case Algorithm::kHruViewsOnly:
      result = HruViewGreedy(cube_graph_.graph, config.space_budget);
      break;
    case Algorithm::kOptimal:
      result = BranchAndBoundOptimal(cube_graph_.graph, config.space_budget,
                                     config.optimal);
      break;
  }
  if (!result.status.ok() && !result.status.IsInterruption()) {
    // Rejected input (bad checkpoint, non-finalized graph, injected
    // fault): nothing to report beyond the status.
    return RejectedRecommendation(std::move(result.status));
  }

  Recommendation rec;
  rec.raw = result;
  rec.status = result.status;
  rec.completed = result.completed;
  rec.space_used = result.space_used;
  rec.graph_fingerprint = graph_fingerprint_;
  rec.initial_average_cost =
      result.total_frequency > 0.0
          ? result.initial_cost / result.total_frequency
          : 0.0;
  rec.average_query_cost = result.AverageQueryCost();

  for (const StructureRef& s : result.picks) {
    RecommendedStructure r;
    r.view = cube_graph_.view_attrs[s.view];
    if (!s.is_view()) {
      r.index = cube_graph_.index_keys[s.view][static_cast<size_t>(s.index)];
    }
    r.name = cube_graph_.graph.StructureName(s);
    r.space = cube_graph_.graph.structure_space(s);
    rec.structures.push_back(std::move(r));
  }

  // Best access path per query, over the selected structures, costed by
  // the same model the graph's edges were built with. A plain view scan
  // goes through ScanCost (for the paper model that equals the historical
  // |C| / |∅| division: the apex has one row); an index path charges
  // IndexCost through its longest selection-only prefix.
  const CostModel& model = cost_model();
  for (size_t qi = 0; qi < cube_graph_.queries.size(); ++qi) {
    const SliceQuery& query = cube_graph_.queries[qi];
    QueryPlan plan;
    plan.query = query;
    plan.use_raw = true;
    plan.estimated_cost =
        cube_graph_.graph.query_default_cost(static_cast<uint32_t>(qi));
    for (const StructureRef& s : result.picks) {
      AttributeSet view_attrs = cube_graph_.view_attrs[s.view];
      if (!query.AnswerableFrom(view_attrs)) continue;
      IndexKey key;
      if (!s.is_view()) {
        key = cube_graph_.index_keys[s.view][static_cast<size_t>(s.index)];
      }
      const double view_rows = sizes_.SizeOf(view_attrs);
      const double c =
          key.empty()
              ? model.ScanCost(view_rows)
              : model.IndexCost(view_rows,
                                sizes_.SizeOf(key.LongestSelectionPrefix(
                                    query.selection())));
      if (c < plan.estimated_cost) {
        plan.estimated_cost = c;
        plan.use_raw = false;
        plan.view = view_attrs;
        plan.index = key;
      }
    }
    rec.plans.push_back(std::move(plan));
  }
  return rec;
}

SelectionCheckpoint Recommendation::ToCheckpoint(
    const AdvisorConfig& config) const {
  SelectionCheckpoint checkpoint;
  checkpoint.algorithm = AlgorithmName(config.algorithm);
  checkpoint.space_budget = config.space_budget;
  checkpoint.stages = raw.stats.stages;
  checkpoint.graph_fingerprint = graph_fingerprint;
  checkpoint.picks = structures;
  checkpoint.pick_benefits = raw.pick_benefits;
  return checkpoint;
}

}  // namespace olapidx
