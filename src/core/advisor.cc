#include "core/advisor.h"

#include <algorithm>

namespace olapidx {

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kOneGreedy:
      return "1-greedy";
    case Algorithm::kRGreedy:
      return "r-greedy";
    case Algorithm::kInnerLevel:
      return "inner-level greedy";
    case Algorithm::kTwoStep:
      return "two-step";
    case Algorithm::kHruViewsOnly:
      return "HRU views-only greedy";
    case Algorithm::kOptimal:
      return "branch-and-bound optimal";
  }
  return "unknown";
}

Advisor::Advisor(const CubeSchema& schema, const ViewSizes& sizes,
                 const Workload& workload, const CubeGraphOptions& options)
    : schema_(schema),
      sizes_(sizes),
      workload_(workload),
      cube_graph_(BuildCubeGraph(schema, sizes, workload, options)) {}

Recommendation Advisor::Recommend(const AdvisorConfig& config) const {
  SelectionResult result;
  switch (config.algorithm) {
    case Algorithm::kOneGreedy:
      result = OneGreedy(cube_graph_.graph, config.space_budget);
      break;
    case Algorithm::kRGreedy:
      result = RGreedy(cube_graph_.graph, config.space_budget,
                       config.r_greedy);
      break;
    case Algorithm::kInnerLevel:
      result = InnerLevelGreedy(cube_graph_.graph, config.space_budget,
                                config.inner_greedy);
      break;
    case Algorithm::kTwoStep:
      result = TwoStep(cube_graph_.graph, config.space_budget,
                       config.two_step);
      break;
    case Algorithm::kHruViewsOnly:
      result = HruViewGreedy(cube_graph_.graph, config.space_budget);
      break;
    case Algorithm::kOptimal:
      result = BranchAndBoundOptimal(cube_graph_.graph, config.space_budget,
                                     config.optimal);
      break;
  }

  Recommendation rec;
  rec.raw = result;
  rec.space_used = result.space_used;
  rec.initial_average_cost =
      result.total_frequency > 0.0
          ? result.initial_cost / result.total_frequency
          : 0.0;
  rec.average_query_cost = result.AverageQueryCost();

  for (const StructureRef& s : result.picks) {
    RecommendedStructure r;
    r.view = cube_graph_.view_attrs[s.view];
    if (!s.is_view()) {
      r.index = cube_graph_.index_keys[s.view][static_cast<size_t>(s.index)];
    }
    r.name = cube_graph_.graph.StructureName(s);
    r.space = cube_graph_.graph.structure_space(s);
    rec.structures.push_back(std::move(r));
  }

  // Best access path per query, over the selected structures.
  LinearCostModel cost(&sizes_);
  for (size_t qi = 0; qi < cube_graph_.queries.size(); ++qi) {
    const SliceQuery& query = cube_graph_.queries[qi];
    QueryPlan plan;
    plan.query = query;
    plan.use_raw = true;
    plan.estimated_cost =
        cube_graph_.graph.query_default_cost(static_cast<uint32_t>(qi));
    for (const StructureRef& s : result.picks) {
      AttributeSet view_attrs = cube_graph_.view_attrs[s.view];
      if (!query.AnswerableFrom(view_attrs)) continue;
      IndexKey key;
      if (!s.is_view()) {
        key = cube_graph_.index_keys[s.view][static_cast<size_t>(s.index)];
      }
      double c = cost.QueryCost(query, view_attrs, key);
      if (c < plan.estimated_cost) {
        plan.estimated_cost = c;
        plan.use_raw = false;
        plan.view = view_attrs;
        plan.index = key;
      }
    }
    rec.plans.push_back(std::move(plan));
  }
  return rec;
}

}  // namespace olapidx
