// Exact optimal selection via depth-first branch-and-bound.
//
// The selection problem is NP-complete (Section 5: reduction from
// Set-Cover), so this solver is for the small instances used to measure the
// greedy algorithms' empirical optimality ratios (Section 6) and to verify
// the theoretical guarantees in tests.
//
// Pruning uses a fractional-knapsack upper bound over per-structure
// benefits computed against the empty selection. Those are valid optimistic
// bounds because query-cost benefit is subadditive: the benefit of a set
// never exceeds the sum of its members' individual benefits, and individual
// benefits only shrink as the selection grows.

#ifndef OLAPIDX_CORE_OPTIMAL_H_
#define OLAPIDX_CORE_OPTIMAL_H_

#include <cstdint>

#include "core/selection_result.h"

namespace olapidx {

struct OptimalOptions {
  // Abort (returning the best selection found so far, with
  // proven_optimal = false) after this many search nodes.
  uint64_t node_limit = 50'000'000;
};

// Maximizes benefit subject to total space <= space_budget (an index may be
// chosen only together with its view). `result.proven_optimal` reports
// whether the search ran to completion.
SelectionResult BranchAndBoundOptimal(const QueryViewGraph& graph,
                                      double space_budget,
                                      const OptimalOptions& options = {});

// A certified upper bound on the optimal benefit for the given budget: the
// minimum of (a) the solver's root relaxation — fractional knapsack over
// per-structure benefits against the empty selection — and (b) the perfect
// benefit — every query answered at its cheapest edge regardless of space.
// Cheap even on instances far too large for the exact solver;
// benefit(heuristic) / UpperBoundBenefit is a certified lower bound on the
// heuristic's true optimality ratio.
double UpperBoundBenefit(const QueryViewGraph& graph, double space_budget);

// The perfect benefit alone: Σ f_i (T_i − cheapest cost of any structure
// for query i). No selection can beat this at any budget.
double PerfectBenefit(const QueryViewGraph& graph);

}  // namespace olapidx

#endif  // OLAPIDX_CORE_OPTIMAL_H_
