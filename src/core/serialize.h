// Plain-text serialization of advisor artifacts, so a physical design can
// be reviewed, versioned, and replayed by deployment tooling.
//
// Design format ("olapidx-design v1"):
//
//     olapidx-design v1
//     # comments and blank lines allowed
//     view p,s
//     index p,s : s,p
//     view none
//
// `view A` materializes the subcube with group-by attrs A ("none" = apex);
// `index V : K` builds the index with ordered key K on subcube V. Every
// `index` line must follow the `view` line of its view (an index cannot be
// built on an unmaterialized subcube) and duplicate structures are
// rejected.
//
// Sizes format ("olapidx-sizes v1"): one `size <attrs> <rows>` line per
// subcube; all 2^n subcubes must be present, each exactly once.
//
// Checkpoint format ("olapidx-checkpoint v1"): the resumable pick prefix
// of an interrupted greedy selection run —
//
//     olapidx-checkpoint v1
//     algorithm inner-level greedy
//     budget 250000
//     graph 6b6f2a9c01e4d357
//     stages 3
//     pick 1234.5 view p,s
//     pick 617.25 index p,s : s,p
//
// `algorithm` is the AlgorithmName() of the producing run, `budget` its
// space budget (%.17g, bit-exact round-trip), `stages` the number of
// greedy stages the prefix represents, and each `pick` line carries the
// structure's recorded incremental benefit (the a_i). The optional `graph`
// line is the 16-hex-digit QueryViewGraph::Fingerprint() of the graph the
// run selected against; when present, a resume against a graph with a
// different fingerprint is rejected (FailedPrecondition) instead of
// resolving picks against the wrong costs. Absent = legacy checkpoint,
// accepted against any graph that resolves the picks.
//
// All parsers are total functions: malformed input yields a line-tagged
// error Status, never a crash.

#ifndef OLAPIDX_CORE_SERIALIZE_H_
#define OLAPIDX_CORE_SERIALIZE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/advisor.h"
#include "cost/view_sizes.h"

namespace olapidx {

// ---- Physical designs ----

std::string SerializeDesign(
    const std::vector<RecommendedStructure>& structures,
    const CubeSchema& schema);

// Parses into (view, index) items; names are validated against `schema`,
// duplicate structures and indexes on unmaterialized views are rejected.
StatusOr<std::vector<RecommendedStructure>> ParseDesign(
    const std::string& text, const CubeSchema& schema);

// ---- View sizes ----

std::string SerializeViewSizes(const ViewSizes& sizes,
                               const CubeSchema& schema);

// Parses a complete size table: every subcube exactly once, rows >= 1.
StatusOr<ViewSizes> ParseViewSizes(const std::string& text,
                                   const CubeSchema& schema);

// ---- Selection checkpoints ----

std::string SerializeCheckpoint(const SelectionCheckpoint& checkpoint,
                                const CubeSchema& schema);

// Parses a checkpoint; structural design rules (duplicates, index before
// its view) are enforced the same way as ParseDesign. Whether the picks
// exist in the cube graph is checked later, when the resuming run resolves
// them (Advisor::Recommend).
StatusOr<SelectionCheckpoint> ParseCheckpoint(const std::string& text,
                                              const CubeSchema& schema);

}  // namespace olapidx

#endif  // OLAPIDX_CORE_SERIALIZE_H_
