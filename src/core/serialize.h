// Plain-text serialization of advisor artifacts, so a physical design can
// be reviewed, versioned, and replayed by deployment tooling.
//
// Design format ("olapidx-design v1"):
//
//     olapidx-design v1
//     # comments and blank lines allowed
//     view p,s
//     index p,s : s,p
//     view none
//
// `view A` materializes the subcube with group-by attrs A ("none" = apex);
// `index V : K` builds the index with ordered key K on subcube V.
//
// Sizes format ("olapidx-sizes v1"): one `size <attrs> <rows>` line per
// subcube; all 2^n subcubes must be present.

#ifndef OLAPIDX_CORE_SERIALIZE_H_
#define OLAPIDX_CORE_SERIALIZE_H_

#include <string>
#include <vector>

#include "core/advisor.h"
#include "cost/view_sizes.h"

namespace olapidx {

// ---- Physical designs ----

std::string SerializeDesign(
    const std::vector<RecommendedStructure>& structures,
    const CubeSchema& schema);

// Parses into (view, index) items; names are validated against `schema`.
// Returns false with a line-tagged message in `error` on malformed input.
bool ParseDesign(const std::string& text, const CubeSchema& schema,
                 std::vector<RecommendedStructure>* structures,
                 std::string* error);

// ---- View sizes ----

std::string SerializeViewSizes(const ViewSizes& sizes,
                               const CubeSchema& schema);

bool ParseViewSizes(const std::string& text, const CubeSchema& schema,
                    ViewSizes* sizes, std::string* error);

}  // namespace olapidx

#endif  // OLAPIDX_CORE_SERIALIZE_H_
