// Shared instrumentation for the selection cores (r_greedy.cc,
// inner_greedy.cc): the metric names and the aggregation points, so the
// eager, lazy, and inner-level loops report identically-named metrics.
//
// Everything is recorded once per run from the totals and per-stage
// vectors the result already tracks: the hot loops gain no per-candidate
// atomics, and even the per-stage histograms are folded in as one batch
// at end of run. Observing them inside the stage loop costs two scattered
// sets of histogram-shard cache lines per stage — measurable against the
// cache-resident evaluation loop (bench_perf_scaling dim-5) — while the
// batch records the identical observations for a fraction of that.
// Everything is a no-op under OLAPIDX_METRICS=OFF.

#ifndef OLAPIDX_CORE_SELECTION_METRICS_H_
#define OLAPIDX_CORE_SELECTION_METRICS_H_

#include "common/metrics.h"
#include "core/selection_result.h"

namespace olapidx::selection_metrics {

// One selection run finished; folds the run's exact totals and per-stage
// series into the process-wide registry. `stages_this_call` excludes
// replayed checkpoint stages (which did no work in this call) — the
// stage vectors already contain only this call's stages, including the
// terminating no-winner probe. Kept out of line so the registry machinery
// (static-init guards, shard lookups) never lands inside the callers'
// stage loops.
[[gnu::noinline]] inline void RecordRun(const SelectionResult& result,
                                        uint64_t stages_this_call) {
  OLAPIDX_METRIC_COUNTER(runs, "selection.runs");
  OLAPIDX_METRIC_COUNTER(stages, "selection.stages");
  OLAPIDX_METRIC_COUNTER(candidates, "selection.candidates_evaluated");
  OLAPIDX_METRIC_COUNTER(truncated, "selection.candidates_truncated");
  OLAPIDX_METRIC_COUNTER(cache_hits, "selection.cache_hits");
  OLAPIDX_METRIC_COUNTER(cache_misses, "selection.cache_misses");
  OLAPIDX_METRIC_COUNTER(bound_prunes, "selection.bound_prunes");
  OLAPIDX_METRIC_HISTOGRAM(run_wall, "selection.run_micros");
  OLAPIDX_METRIC_HISTOGRAM(stage_wall, "selection.stage_micros");
  OLAPIDX_METRIC_HISTOGRAM(stage_cands, "selection.stage_candidates");
  runs.Add(1);
  stages.Add(stages_this_call);
  candidates.Add(result.candidates_evaluated);
  truncated.Add(result.candidates_truncated);
  cache_hits.Add(result.stats.cache_hits);
  cache_misses.Add(result.stats.cache_misses);
  bound_prunes.Add(result.stats.bound_prunes);
  run_wall.Observe(result.stats.total_wall_micros);
  for (uint64_t micros : result.stats.stage_wall_micros) {
    stage_wall.Observe(micros);
  }
  for (uint64_t count : result.stats.stage_candidates) {
    stage_cands.Observe(count);
  }
}

}  // namespace olapidx::selection_metrics

#endif  // OLAPIDX_CORE_SELECTION_METRICS_H_
