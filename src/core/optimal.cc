#include "core/optimal.h"

#include <algorithm>
#include <vector>

#include "core/selection_state.h"

namespace olapidx {

namespace {

struct Item {
  StructureRef ref;
  double space = 0.0;
  // Benefit against the empty selection — an upper bound on the item's
  // benefit against any selection (benefits shrink as M grows). For an
  // index, computed as if its view were present (also optimistic).
  double root_benefit = 0.0;

  double Density() const { return root_benefit / space; }
};

class Solver {
 public:
  Solver(const QueryViewGraph& graph, double budget,
         const OptimalOptions& options)
      : graph_(graph), budget_(budget), options_(options) {}

  SelectionResult Run() {
    BuildItems();
    SeedIncumbent();
    SelectionState root(&graph_);
    view_excluded_.assign(graph_.num_views(), 0);
    completed_ = true;
    Dfs(0, root, budget_);

    SelectionResult result;
    result.initial_cost = SelectionState(&graph_).TotalCost();
    for (uint32_t q = 0; q < graph_.num_queries(); ++q) {
      result.total_frequency += graph_.query_frequency(q);
    }
    result.picks = best_picks_;
    result.pick_benefits.assign(best_picks_.size(), 0.0);
    // Replay the winning selection to split τ from maintenance.
    SelectionState replay(&graph_);
    for (const StructureRef& s : best_picks_) replay.ApplyStructure(s);
    result.final_cost = replay.TotalCost();
    result.total_maintenance = replay.TotalMaintenance();
    result.space_used = replay.SpaceUsed();
    result.candidates_evaluated = nodes_;
    result.proven_optimal = completed_;
    return result;
  }

 private:
  void BuildItems() {
    SelectionState empty(&graph_);
    // Per view: the view item followed by its index items (an index is only
    // selectable when its view precedes it on the search path).
    struct ViewGroup {
      std::vector<Item> items;
      double best_density = 0.0;
    };
    std::vector<ViewGroup> groups;
    for (uint32_t v = 0; v < graph_.num_views(); ++v) {
      ViewGroup g;
      Item view_item;
      view_item.ref = StructureRef{v, StructureRef::kNoIndex};
      view_item.space = graph_.view_space(v);
      view_item.root_benefit =
          empty.StructureBenefit(view_item.ref);
      g.items.push_back(view_item);

      std::vector<Item> index_items;
      for (int32_t k = 0; k < graph_.num_indexes(v); ++k) {
        Item it;
        it.ref = StructureRef{v, k};
        it.space = graph_.index_space(v, k);
        // Benefit as if the view were present: best-cost reduction offered
        // by the index alone.
        const std::vector<uint32_t>& queries = graph_.ViewQueries(v);
        double b = 0.0;
        for (size_t pos = 0; pos < queries.size(); ++pos) {
          double c = graph_.IndexCostAt(v, k, pos);
          double cur = empty.QueryBestCost(queries[pos]);
          if (c < cur) {
            b += graph_.query_frequency(queries[pos]) * (cur - c);
          }
        }
        it.root_benefit = b - graph_.structure_maintenance(it.ref);
        if (it.root_benefit > 0.0) index_items.push_back(it);
      }
      std::sort(index_items.begin(), index_items.end(),
                [](const Item& a, const Item& b) {
                  return a.Density() > b.Density();
                });
      for (Item& it : index_items) g.items.push_back(it);

      // A view with no beneficial structure at all can be dropped.
      g.best_density = 0.0;
      for (const Item& it : g.items) {
        g.best_density = std::max(g.best_density, it.Density());
      }
      if (g.best_density > 0.0) groups.push_back(std::move(g));
    }
    std::sort(groups.begin(), groups.end(),
              [](const ViewGroup& a, const ViewGroup& b) {
                return a.best_density > b.best_density;
              });
    for (ViewGroup& g : groups) {
      for (Item& it : g.items) items_.push_back(it);
    }
    // Density-sorted order for the fractional bound.
    by_density_.resize(items_.size());
    for (size_t i = 0; i < items_.size(); ++i) by_density_[i] = i;
    std::sort(by_density_.begin(), by_density_.end(),
              [this](size_t a, size_t b) {
                return items_[a].Density() > items_[b].Density();
              });
  }

  // Valid incumbent: repeatedly apply the best single structure that fits.
  void SeedIncumbent() {
    SelectionState state(&graph_);
    double space_left = budget_;
    for (;;) {
      bool found = false;
      StructureRef best{};
      double best_ratio = 0.0;
      for (const Item& it : items_) {
        if (it.space > space_left || state.Selected(it.ref)) continue;
        if (!it.ref.is_view() && !state.ViewSelected(it.ref.view)) continue;
        double b = state.StructureBenefit(it.ref);
        if (b <= 0.0) continue;
        double ratio = b / it.space;
        if (!found || ratio > best_ratio) {
          found = true;
          best = it.ref;
          best_ratio = ratio;
        }
      }
      if (!found) break;
      state.ApplyStructure(best);
      space_left -= graph_.structure_space(best);
    }
    best_benefit_ = state.TotalBenefit();
    best_picks_ = state.picks();
  }

  // Fractional-knapsack upper bound on additional benefit from items at
  // positions >= pos with `space_left` budget.
  double Bound(size_t pos, double space_left) const {
    double bound = 0.0;
    for (size_t i : by_density_) {
      if (space_left <= 0.0) break;
      if (i < pos) continue;  // already decided
      const Item& it = items_[i];
      // Negative-net items (possible under the maintenance extension) can
      // be bounded at zero contribution.
      if (it.root_benefit <= 0.0) continue;
      if (!it.ref.is_view() && view_excluded_[it.ref.view]) continue;
      if (it.space <= space_left) {
        bound += it.root_benefit;
        space_left -= it.space;
      } else {
        bound += it.root_benefit * (space_left / it.space);
        space_left = 0.0;
      }
    }
    return bound;
  }

  void Dfs(size_t pos, const SelectionState& state, double space_left) {
    if (++nodes_ > options_.node_limit) {
      completed_ = false;
      return;
    }
    if (state.TotalBenefit() > best_benefit_) {
      best_benefit_ = state.TotalBenefit();
      best_picks_ = state.picks();
    }
    if (pos == items_.size()) return;
    if (state.TotalBenefit() + Bound(pos, space_left) <=
        best_benefit_ * (1.0 + 1e-12) + 1e-12) {
      return;
    }
    const Item& it = items_[pos];
    bool eligible = it.space <= space_left;
    if (!it.ref.is_view()) {
      eligible = eligible && state.ViewSelected(it.ref.view);
    }
    if (eligible) {
      SelectionState child = state;
      child.ApplyStructure(it.ref);
      Dfs(pos + 1, child, space_left - it.space);
      if (!completed_) return;
    }
    // Exclude branch.
    if (it.ref.is_view()) {
      view_excluded_[it.ref.view] = 1;
      Dfs(pos + 1, state, space_left);
      view_excluded_[it.ref.view] = 0;
    } else {
      Dfs(pos + 1, state, space_left);
    }
  }

  const QueryViewGraph& graph_;
  double budget_;
  OptimalOptions options_;
  std::vector<Item> items_;
  std::vector<size_t> by_density_;
  std::vector<uint8_t> view_excluded_;
  std::vector<StructureRef> best_picks_;
  double best_benefit_ = 0.0;
  uint64_t nodes_ = 0;
  bool completed_ = true;
};

}  // namespace

SelectionResult BranchAndBoundOptimal(const QueryViewGraph& graph,
                                      double space_budget,
                                      const OptimalOptions& options) {
  OLAPIDX_CHECK(graph.finalized());
  OLAPIDX_CHECK(space_budget >= 0.0);
  Solver solver(graph, space_budget, options);
  return solver.Run();
}

double UpperBoundBenefit(const QueryViewGraph& graph, double space_budget) {
  OLAPIDX_CHECK(graph.finalized());
  OLAPIDX_CHECK(space_budget >= 0.0);
  SelectionState empty(&graph);
  // Per-structure optimistic benefits (indexes assume their view present),
  // filled fractionally by density.
  std::vector<std::pair<double, double>> items;  // (density, space)
  for (uint32_t v = 0; v < graph.num_views(); ++v) {
    double vb = empty.StructureBenefit(StructureRef{v,
                                                    StructureRef::kNoIndex});
    if (vb > 0.0) items.emplace_back(vb / graph.view_space(v),
                                     graph.view_space(v));
    const std::vector<uint32_t>& queries = graph.ViewQueries(v);
    for (int32_t k = 0; k < graph.num_indexes(v); ++k) {
      double b = 0.0;
      for (size_t pos = 0; pos < queries.size(); ++pos) {
        double c = graph.IndexCostAt(v, k, pos);
        double cur = empty.QueryBestCost(queries[pos]);
        if (c < cur) b += graph.query_frequency(queries[pos]) * (cur - c);
      }
      b -= graph.structure_maintenance(StructureRef{v, k});
      if (b > 0.0) {
        items.emplace_back(b / graph.index_space(v, k),
                           graph.index_space(v, k));
      }
    }
  }
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  double bound = 0.0;
  double left = space_budget;
  for (const auto& [density, space] : items) {
    if (left <= 0.0) break;
    double take = std::min(space, left);
    bound += density * take;
    left -= take;
  }
  // With many overlapping indexes the knapsack relaxation double-counts
  // the same query reductions; the perfect benefit caps that.
  return std::min(bound, PerfectBenefit(graph));
}

double PerfectBenefit(const QueryViewGraph& graph) {
  OLAPIDX_CHECK(graph.finalized());
  std::vector<double> best(graph.num_queries());
  for (uint32_t q = 0; q < graph.num_queries(); ++q) {
    best[q] = graph.query_default_cost(q);
  }
  for (uint32_t v = 0; v < graph.num_views(); ++v) {
    const std::vector<uint32_t>& queries = graph.ViewQueries(v);
    for (size_t pos = 0; pos < queries.size(); ++pos) {
      double c = graph.ViewCostAt(v, pos);
      for (int32_t k = 0; k < graph.num_indexes(v); ++k) {
        c = std::min(c, graph.IndexCostAt(v, k, pos));
      }
      best[queries[pos]] = std::min(best[queries[pos]], c);
    }
  }
  double benefit = 0.0;
  for (uint32_t q = 0; q < graph.num_queries(); ++q) {
    benefit +=
        graph.query_frequency(q) * (graph.query_default_cost(q) - best[q]);
  }
  return benefit;
}

}  // namespace olapidx
