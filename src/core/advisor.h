// Advisor: the high-level "what should I precompute?" API.
//
// Ties together the cube lattice, the cost model, the workload, and the
// selection algorithms, and returns a physical-design recommendation — the
// structures to materialize plus the best plan for every workload query.
// This is the entry point examples and the execution engine use.

#ifndef OLAPIDX_CORE_ADVISOR_H_
#define OLAPIDX_CORE_ADVISOR_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "core/cube_graph.h"
#include "core/sparse_cube_graph.h"
#include "core/inner_greedy.h"
#include "core/optimal.h"
#include "core/r_greedy.h"
#include "core/selection_result.h"
#include "core/two_step.h"

namespace olapidx {

enum class Algorithm {
  kOneGreedy,      // r-greedy with r = 1
  kRGreedy,        // r-greedy with configurable r
  kInnerLevel,     // inner-level greedy (the paper's practical pick)
  kTwoStep,        // industry baseline: views first, then indexes
  kHruViewsOnly,   // [HRU96] no-index baseline
  kOptimal,        // branch-and-bound (small instances only)
};

const char* AlgorithmName(Algorithm algorithm);

struct SelectionCheckpoint;

struct AdvisorConfig {
  Algorithm algorithm = Algorithm::kInnerLevel;
  double space_budget = 0.0;
  // kRGreedy only.
  RGreedyOptions r_greedy;
  // kInnerLevel only.
  InnerGreedyOptions inner_greedy;
  // kTwoStep only.
  TwoStepOptions two_step;
  // kOptimal only.
  OptimalOptions optimal;

  // Interruption inputs for the greedy algorithms (kOneGreedy, kRGreedy,
  // kInnerLevel): deadline, cancel token, stage budget. An interrupted
  // run returns completed == false with the anytime best-so-far design.
  // Rejected with Unimplemented for the other algorithms (they have no
  // anytime contract), unless the control is unlimited.
  RunControl control = {};

  // Warm start from a checkpoint of an interrupted run (greedy algorithms
  // only). The checkpoint's algorithm tag and budget must match this
  // config; picks are resolved against the cube graph. Not owned; must
  // outlive the Recommend call.
  const SelectionCheckpoint* resume = nullptr;
};

// One recommended structure, in pick order.
struct RecommendedStructure {
  AttributeSet view;
  // Empty key means "the view itself"; otherwise an index on `view`.
  IndexKey index;
  std::string name;
  double space = 0.0;

  bool is_view() const { return index.empty(); }
};

// The pick prefix of an interrupted greedy run, in cube terms (attribute
// sets and keys, not graph ids) so it survives re-building the graph in a
// later process. The on-disk form is "olapidx-checkpoint v1"
// (core/serialize.h); `algorithm` and `space_budget` let the resuming run
// verify it is continuing the same selection problem.
struct SelectionCheckpoint {
  std::string algorithm;              // AlgorithmName() of the original run
  double space_budget = 0.0;
  uint64_t stages = 0;                // greedy stages the prefix represents
  // QueryViewGraph::Fingerprint() of the graph the checkpoint was taken
  // against; 0 = not stamped (legacy checkpoint, or a caller that
  // deliberately warm-starts across graphs). Recommend rejects a nonzero
  // fingerprint that does not match the advisor's graph — picks would
  // resolve by name against the wrong costs and silently corrupt the
  // resumed selection.
  uint64_t graph_fingerprint = 0;
  std::vector<RecommendedStructure> picks;  // in original pick order
  std::vector<double> pick_benefits;        // parallel to picks (the a_i)
};

// The chosen access path for one workload query.
struct QueryPlan {
  SliceQuery query;
  // True when no materialized structure beats the raw table.
  bool use_raw = true;
  AttributeSet view;
  IndexKey index;  // empty = plain scan of `view`
  double estimated_cost = 0.0;
};

struct Recommendation {
  // Run outcome, mirroring raw.status: OK = complete; an interruption
  // code = anytime partial design (still fully usable); any other code =
  // the config or checkpoint was rejected and the recommendation is
  // empty.
  Status status;
  bool completed = true;
  std::vector<RecommendedStructure> structures;
  std::vector<QueryPlan> plans;
  double space_used = 0.0;
  // Frequency-weighted average query cost before/after.
  double initial_average_cost = 0.0;
  double average_query_cost = 0.0;
  // Fingerprint of the graph this recommendation was computed against
  // (copied into checkpoints by ToCheckpoint); 0 only for rejected runs.
  uint64_t graph_fingerprint = 0;
  // The underlying algorithm output (picks as graph ids, τ, work counters).
  SelectionResult raw;

  // Packages this (typically interrupted) recommendation as a resumable
  // checkpoint, stamped with the producing config's algorithm and budget.
  SelectionCheckpoint ToCheckpoint(const AdvisorConfig& config) const;
};

class Advisor {
 public:
  // Aborts on an unsupported configuration (n beyond the index-family
  // dimension limits); prefer Create at external boundaries.
  Advisor(const CubeSchema& schema, const ViewSizes& sizes,
          const Workload& workload, const CubeGraphOptions& options = {});

  // Status-propagating construction: surfaces TryBuildCubeGraph errors
  // (e.g. n > 8 with fat indexes) instead of aborting, so a CLI or service
  // can report them.
  static StatusOr<Advisor> Create(const CubeSchema& schema,
                                  const ViewSizes& sizes,
                                  const Workload& workload,
                                  const CubeGraphOptions& options = {});

  // Workload-pruned construction for 12–20 dimension cubes (see
  // core/sparse_cube_graph.h): prunes queries/views/indexes before any
  // edge exists and stores compressed cost columns. Recommendations and
  // plans cover the *retained* query set; sparse_stats() reports what was
  // pruned.
  static StatusOr<Advisor> CreateSparse(
      const CubeSchema& schema, const ViewSizes& sizes,
      const Workload& workload, const SparseCubeGraphOptions& options = {});

  const CubeGraph& cube_graph() const { return cube_graph_; }
  const CubeSchema& schema() const { return schema_; }
  const ViewSizes& sizes() const { return sizes_; }
  // The model edges and plans were costed with (the paper's linear model
  // when the construction options left cost_model unset).
  const CostModel& cost_model() const {
    return cost_model_ ? *cost_model_ : PaperCostModel::Instance();
  }
  // Pruning/build telemetry of CreateSparse; nullptr for dense advisors.
  const SparseBuildStats* sparse_stats() const {
    return sparse_stats_ ? &*sparse_stats_ : nullptr;
  }
  // QueryViewGraph::Fingerprint() of this advisor's graph, computed once at
  // construction (the graph is immutable from then on).
  uint64_t graph_fingerprint() const { return graph_fingerprint_; }

  Recommendation Recommend(const AdvisorConfig& config) const;

 private:
  Advisor(const CubeSchema& schema, const ViewSizes& sizes,
          const Workload& workload, CubeGraph cube_graph);

  CubeSchema schema_;
  ViewSizes sizes_;
  Workload workload_;
  CubeGraph cube_graph_;
  uint64_t graph_fingerprint_ = 0;
  std::optional<SparseBuildStats> sparse_stats_;
  std::shared_ptr<const CostModel> cost_model_;
};

}  // namespace olapidx

#endif  // OLAPIDX_CORE_ADVISOR_H_
