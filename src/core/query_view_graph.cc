#include "core/query_view_graph.h"

#include <algorithm>

namespace olapidx {

uint32_t QueryViewGraph::AddView(std::string name, double space) {
  OLAPIDX_CHECK(!finalized_);
  OLAPIDX_CHECK(space > 0.0);
  ViewData vd;
  vd.name = std::move(name);
  vd.space = space;
  views_.push_back(std::move(vd));
  ++num_structures_;
  return static_cast<uint32_t>(views_.size() - 1);
}

int32_t QueryViewGraph::AddIndex(uint32_t view, std::string name,
                                 double space) {
  OLAPIDX_CHECK(!finalized_);
  OLAPIDX_CHECK(view < num_views());
  OLAPIDX_CHECK(space > 0.0);
  ViewData& vd = views_[view];
  vd.index_names.push_back(std::move(name));
  vd.index_spaces.push_back(space);
  vd.index_maintenance.push_back(0.0);
  ++num_structures_;
  return static_cast<int32_t>(vd.index_names.size() - 1);
}

uint32_t QueryViewGraph::AddQuery(std::string name, double default_cost,
                                  double frequency) {
  OLAPIDX_CHECK(!finalized_);
  OLAPIDX_CHECK(default_cost >= 0.0);
  OLAPIDX_CHECK(frequency >= 0.0);
  queries_.push_back(QueryData{std::move(name), default_cost, frequency});
  return static_cast<uint32_t>(queries_.size() - 1);
}

void QueryViewGraph::SetViewMaintenance(uint32_t view, double cost) {
  OLAPIDX_CHECK(view < num_views());
  OLAPIDX_CHECK(cost >= 0.0);
  views_[view].maintenance = cost;
}

void QueryViewGraph::SetIndexMaintenance(uint32_t view, int32_t index,
                                         double cost) {
  OLAPIDX_CHECK(view < num_views());
  OLAPIDX_CHECK(index >= 0 && index < num_indexes(view));
  OLAPIDX_CHECK(cost >= 0.0);
  views_[view].index_maintenance[static_cast<size_t>(index)] = cost;
}

void QueryViewGraph::AddViewEdge(uint32_t query, uint32_t view, double cost) {
  OLAPIDX_CHECK(!finalized_);
  OLAPIDX_CHECK(query < num_queries());
  OLAPIDX_CHECK(view < num_views());
  OLAPIDX_CHECK(cost >= 0.0);
  pending_.push_back(PendingEdge{query, view, StructureRef::kNoIndex, cost});
}

void QueryViewGraph::AddIndexEdge(uint32_t query, uint32_t view,
                                  int32_t index, double cost) {
  OLAPIDX_CHECK(!finalized_);
  OLAPIDX_CHECK(query < num_queries());
  OLAPIDX_CHECK(view < num_views());
  OLAPIDX_CHECK(index >= 0 && index < num_indexes(view));
  OLAPIDX_CHECK(cost >= 0.0);
  pending_.push_back(PendingEdge{query, view, index, cost});
}

void QueryViewGraph::Finalize() {
  OLAPIDX_CHECK(!finalized_);
  // Group pending edges by view, then build dense per-view cost tables.
  std::stable_sort(pending_.begin(), pending_.end(),
                   [](const PendingEdge& a, const PendingEdge& b) {
                     if (a.view != b.view) return a.view < b.view;
                     return a.query < b.query;
                   });
  size_t i = 0;
  while (i < pending_.size()) {
    uint32_t v = pending_[i].view;
    size_t j = i;
    ViewData& vd = views_[v];
    // Collect the distinct query ids touching this view.
    while (j < pending_.size() && pending_[j].view == v) {
      if (vd.queries.empty() || vd.queries.back() != pending_[j].query) {
        vd.queries.push_back(pending_[j].query);
      }
      ++j;
    }
    size_t nq = vd.queries.size();
    size_t ni = vd.index_names.size();
    vd.view_cost.assign(nq, kInfiniteCost);
    vd.index_cost.assign(ni * nq, kInfiniteCost);
    // Fill costs; keep the cheapest label when duplicates exist
    // (the graph is a multigraph).
    size_t pos = 0;
    for (size_t e = i; e < j; ++e) {
      const PendingEdge& edge = pending_[e];
      while (vd.queries[pos] != edge.query) ++pos;
      if (edge.index == StructureRef::kNoIndex) {
        vd.view_cost[pos] = std::min(vd.view_cost[pos], edge.cost);
      } else {
        double& slot =
            vd.index_cost[static_cast<size_t>(edge.index) * nq + pos];
        slot = std::min(slot, edge.cost);
      }
    }
    i = j;
  }
  pending_.clear();
  pending_.shrink_to_fit();
  // Invert the view→queries adjacency. Views are visited in ascending
  // order, so each query's view list comes out sorted.
  query_views_.assign(queries_.size(), {});
  for (uint32_t v = 0; v < num_views(); ++v) {
    for (uint32_t q : views_[v].queries) {
      query_views_[q].push_back(v);
    }
  }
  finalized_ = true;
}

double QueryViewGraph::DefaultTotalCost() const {
  double total = 0.0;
  for (const QueryData& q : queries_) {
    total += q.frequency * q.default_cost;
  }
  return total;
}

}  // namespace olapidx
