#include "core/query_view_graph.h"

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <mutex>
#include <numeric>
#include <utility>

namespace olapidx {

// The streaming sink: per-view accumulation state that ConsumeEdgeRuns()
// scatters shard buffers into, replacing the buffered run_batches_ path.
// Everything here is order-independent — duplicate labels min-merge and
// each class prototype belongs to its lowest query id — so the finalized
// tables are bit-identical to the buffered merge for any flush order.
struct QueryViewGraph::StreamView {
  // Parallel per-(query, view) entries — the future ViewQueries /
  // view-cost / column-class arrays, appended in arrival order and sorted
  // once in FinalizeStreaming().
  std::vector<uint32_t> entry_query;
  std::vector<double> entry_cost;   // view-edge (scan) cost, min-merged
  std::vector<int32_t> entry_slot;  // class slot, -1 = no index edges
  // One slot per distinct column class seen at this view.
  std::vector<uint64_t> slot_key;
  std::vector<uint32_t> slot_owner;  // lowest query seen in the class
  std::vector<double> slot_protos;   // [slot * num_indexes + k], min-merged
};

struct QueryViewGraph::StreamState {
  std::mutex mu;
  std::vector<StreamView> views;
  uint64_t state_bytes = 0;  // logical bytes of the accumulation state
  uint64_t peak_bytes = 0;   // high-water incl. in-flight batches
};

namespace {

// Logical bytes charged per streaming entry / class slot (the parallel
// array elements above; vector bookkeeping is covered by the per-view
// sizeof(StreamView) charge).
constexpr uint64_t kStreamEntryBytes =
    sizeof(uint32_t) + sizeof(double) + sizeof(int32_t);
constexpr uint64_t kStreamSlotBytes = sizeof(uint64_t) + sizeof(uint32_t);

}  // namespace

QueryViewGraph::QueryViewGraph() = default;
QueryViewGraph::QueryViewGraph(QueryViewGraph&&) noexcept = default;
QueryViewGraph& QueryViewGraph::operator=(QueryViewGraph&&) noexcept =
    default;
QueryViewGraph::~QueryViewGraph() = default;

uint32_t QueryViewGraph::AddView(std::string name, double space) {
  OLAPIDX_CHECK(!finalized_);
  OLAPIDX_CHECK(space > 0.0);
  ViewData vd;
  vd.name = std::move(name);
  vd.space = space;
  views_.push_back(std::move(vd));
  ++num_structures_;
  return static_cast<uint32_t>(views_.size() - 1);
}

int32_t QueryViewGraph::AddIndex(uint32_t view, std::string name,
                                 double space) {
  OLAPIDX_CHECK(!finalized_);
  OLAPIDX_CHECK(view < num_views());
  OLAPIDX_CHECK(space > 0.0);
  ViewData& vd = views_[view];
  OLAPIDX_CHECK(vd.lazy_keys.empty());  // a view is eager or lazy, not both
  vd.index_names.push_back(std::move(name));
  vd.index_spaces.push_back(space);
  vd.index_maintenance.push_back(0.0);
  ++num_structures_;
  return static_cast<int32_t>(vd.index_names.size() - 1);
}

void QueryViewGraph::SetNameDictionary(std::vector<std::string> attr_names) {
  attr_names_ = std::move(attr_names);
}

void QueryViewGraph::SetIndexNamer(
    std::function<std::string(uint32_t, int32_t)> namer) {
  index_namer_ = std::move(namer);
}

void QueryViewGraph::AddIndexesNamed(uint32_t view, int32_t count,
                                     double space_each,
                                     double maintenance_each) {
  OLAPIDX_CHECK(!finalized_);
  OLAPIDX_CHECK(view < num_views());
  OLAPIDX_CHECK(count >= 0);
  OLAPIDX_CHECK(space_each > 0.0);
  OLAPIDX_CHECK(maintenance_each >= 0.0);
  ViewData& vd = views_[view];
  OLAPIDX_CHECK(vd.index_names.empty());  // a view is eager or lazy, not both
  OLAPIDX_CHECK(vd.lazy_keys.empty());
  OLAPIDX_CHECK(vd.index_spaces.empty());
  vd.index_spaces.assign(static_cast<size_t>(count), space_each);
  vd.index_maintenance.assign(static_cast<size_t>(count), maintenance_each);
  num_structures_ += static_cast<uint32_t>(count);
}

void QueryViewGraph::AddIndexes(uint32_t view, std::vector<IndexKey> keys,
                                double space_each, double maintenance_each) {
  OLAPIDX_CHECK(!finalized_);
  OLAPIDX_CHECK(view < num_views());
  OLAPIDX_CHECK(space_each > 0.0);
  OLAPIDX_CHECK(maintenance_each >= 0.0);
  ViewData& vd = views_[view];
  OLAPIDX_CHECK(vd.index_names.empty());  // a view is eager or lazy, not both
  OLAPIDX_CHECK(vd.lazy_keys.empty());
  vd.lazy_keys = std::move(keys);
  vd.index_spaces.assign(vd.lazy_keys.size(), space_each);
  vd.index_maintenance.assign(vd.lazy_keys.size(), maintenance_each);
  num_structures_ += static_cast<uint32_t>(vd.lazy_keys.size());
}

uint32_t QueryViewGraph::AddQuery(std::string name, double default_cost,
                                  double frequency) {
  OLAPIDX_CHECK(!finalized_);
  OLAPIDX_CHECK(default_cost >= 0.0);
  OLAPIDX_CHECK(frequency >= 0.0);
  queries_.push_back(QueryData{std::move(name), default_cost, frequency});
  return static_cast<uint32_t>(queries_.size() - 1);
}

void QueryViewGraph::SetViewMaintenance(uint32_t view, double cost) {
  OLAPIDX_CHECK(view < num_views());
  OLAPIDX_CHECK(cost >= 0.0);
  views_[view].maintenance = cost;
}

void QueryViewGraph::SetIndexMaintenance(uint32_t view, int32_t index,
                                         double cost) {
  OLAPIDX_CHECK(view < num_views());
  OLAPIDX_CHECK(index >= 0 && index < num_indexes(view));
  OLAPIDX_CHECK(cost >= 0.0);
  views_[view].index_maintenance[static_cast<size_t>(index)] = cost;
}

void QueryViewGraph::AddViewEdge(uint32_t query, uint32_t view, double cost) {
  OLAPIDX_CHECK(!finalized_);
  OLAPIDX_CHECK(query < num_queries());
  OLAPIDX_CHECK(view < num_views());
  OLAPIDX_CHECK(cost >= 0.0);
  pending_.push_back(PendingEdge{query, view, StructureRef::kNoIndex, cost});
}

void QueryViewGraph::AddIndexEdge(uint32_t query, uint32_t view,
                                  int32_t index, double cost) {
  OLAPIDX_CHECK(!finalized_);
  OLAPIDX_CHECK(query < num_queries());
  OLAPIDX_CHECK(view < num_views());
  OLAPIDX_CHECK(index >= 0 && index < num_indexes(view));
  OLAPIDX_CHECK(cost >= 0.0);
  pending_.push_back(PendingEdge{query, view, index, cost});
}

void QueryViewGraph::ValidateRun(const EdgeRun& run) const {
  OLAPIDX_CHECK(run.query < num_queries());
  OLAPIDX_CHECK(run.view < num_views());
  OLAPIDX_CHECK(run.cost >= 0.0);
  if (run.index_begin != StructureRef::kNoIndex) {
    OLAPIDX_CHECK(run.index_begin >= 0 && run.index_begin < run.index_end &&
                  run.index_end <= num_indexes(run.view));
    // Class ids index dense scratch in Finalize(); keep them small. The
    // cube builders use (selection ∩ view) + 1, which reaches 2^n at the
    // kMaxDimensions = 20 ceiling the sparse path supports.
    OLAPIDX_CHECK(run.col_class <= (1u << 20));
  }
}

void QueryViewGraph::AddIndexEdgeRun(uint32_t query, uint32_t view,
                                     int32_t index_begin, int32_t index_end,
                                     double cost) {
  OLAPIDX_CHECK(!finalized_);
  EdgeRun run{query, view, index_begin, index_end, cost};
  OLAPIDX_CHECK(index_begin != StructureRef::kNoIndex);
  ValidateRun(run);
  loose_runs_.push_back(run);
}

void QueryViewGraph::AddEdgeRuns(std::vector<EdgeRun> runs) {
  OLAPIDX_CHECK(!finalized_);
  OLAPIDX_CHECK(stream_ == nullptr);  // buffered and streaming are exclusive
  for (const EdgeRun& run : runs) {
    ValidateRun(run);
  }
  run_batches_.push_back(std::move(runs));
}

void QueryViewGraph::BeginStreamingEdges() {
  OLAPIDX_CHECK(!finalized_);
  OLAPIDX_CHECK(stream_ == nullptr);
  OLAPIDX_CHECK(pending_.empty() && loose_runs_.empty() &&
                run_batches_.empty());
  stream_ = std::make_unique<StreamState>();
  stream_->views.resize(views_.size());
  stream_->state_bytes =
      static_cast<uint64_t>(views_.size()) * sizeof(StreamView);
  stream_->peak_bytes = stream_->state_bytes;
}

void QueryViewGraph::ConsumeEdgeRuns(std::vector<EdgeRun>& runs) {
  OLAPIDX_CHECK(!finalized_);
  OLAPIDX_CHECK(stream_ != nullptr);
  for (const EdgeRun& run : runs) ValidateRun(run);
  StreamState& st = *stream_;
  std::lock_guard<std::mutex> lock(st.mu);
  st.peak_bytes =
      std::max(st.peak_bytes,
               st.state_bytes + runs.size() * sizeof(EdgeRun));
  for (const EdgeRun& r : runs) {
    StreamView& sv = st.views[r.view];
    // Within one batch a view's entries arrive in ascending query order
    // (shards walk their query range in order), so "same query as the
    // last entry" is exactly "another run of the current (query, view)".
    const bool same_query =
        !sv.entry_query.empty() && sv.entry_query.back() == r.query;
    if (r.index_begin == StructureRef::kNoIndex) {
      if (same_query) {
        double& slot = sv.entry_cost.back();
        slot = std::min(slot, r.cost);
      } else {
        sv.entry_query.push_back(r.query);
        sv.entry_cost.push_back(r.cost);
        sv.entry_slot.push_back(-1);
        st.state_bytes += kStreamEntryBytes;
      }
      continue;
    }
    const uint64_t key = r.col_class != 0
                             ? static_cast<uint64_t>(r.col_class)
                             : ((uint64_t{1} << 32) | r.query);
    // Distinct classes per view are few; a linear probe beats a per-view
    // hash map here.
    const uint32_t nslots = static_cast<uint32_t>(sv.slot_key.size());
    uint32_t slot = nslots;
    for (uint32_t s = 0; s < nslots; ++s) {
      if (sv.slot_key[s] == key) {
        slot = s;
        break;
      }
    }
    const size_t ni = views_[r.view].index_spaces.size();
    if (slot == nslots) {
      sv.slot_key.push_back(key);
      sv.slot_owner.push_back(r.query);
      sv.slot_protos.resize(sv.slot_protos.size() + ni, kInfiniteCost);
      st.state_bytes += kStreamSlotBytes + ni * sizeof(double);
    } else if (r.query < sv.slot_owner[slot]) {
      // A lower query id claims the class: its runs, not the old owner's,
      // define the prototype (in the buffered path arrival order is
      // globally ascending by query, making the lowest query the class's
      // first-seen owner — this keeps the two paths bit-identical).
      sv.slot_owner[slot] = r.query;
      std::fill_n(sv.slot_protos.begin() +
                      static_cast<std::ptrdiff_t>(slot * ni),
                  ni, kInfiniteCost);
    }
    if (r.query == sv.slot_owner[slot]) {
      double* row = sv.slot_protos.data() + static_cast<size_t>(slot) * ni;
      for (int32_t k = r.index_begin; k < r.index_end; ++k) {
        double& c = row[static_cast<size_t>(k)];
        c = std::min(c, r.cost);
      }
    }
    if (same_query) {
      OLAPIDX_DCHECK(sv.entry_slot.back() == -1 ||
                     sv.entry_slot.back() == static_cast<int32_t>(slot));
      sv.entry_slot.back() = static_cast<int32_t>(slot);
    } else {
      sv.entry_query.push_back(r.query);
      sv.entry_cost.push_back(kInfiniteCost);
      sv.entry_slot.push_back(static_cast<int32_t>(slot));
      st.state_bytes += kStreamEntryBytes;
    }
  }
  st.peak_bytes = std::max(st.peak_bytes, st.state_bytes);
  runs.clear();
}

uint64_t QueryViewGraph::StreamingPeakBytes() const {
  return stream_ != nullptr ? stream_->peak_bytes : streaming_peak_bytes_;
}

void QueryViewGraph::Finalize() {
  OLAPIDX_CHECK(!finalized_);
  if (stream_ != nullptr) {
    FinalizeStreaming();
    return;
  }
  // Bucket every edge group by view with one counting-sort pass instead of
  // a global stable_sort: O(E) and shard-merge-friendly. Edge order within
  // a bucket is irrelevant to the result — duplicate labels are resolved
  // by min, and the per-view query list is sorted explicitly below — so
  // pending edges, loose runs, and shard batches can simply be scattered
  // in arrival order.
  const size_t nv = views_.size();
  std::vector<size_t> count(nv, 0);
  for (const PendingEdge& e : pending_) ++count[e.view];
  for (const EdgeRun& r : loose_runs_) ++count[r.view];
  for (const auto& batch : run_batches_) {
    for (const EdgeRun& r : batch) ++count[r.view];
  }
  std::vector<size_t> offset(nv + 1, 0);
  for (size_t v = 0; v < nv; ++v) offset[v + 1] = offset[v] + count[v];
  std::vector<EdgeRun> by_view(offset[nv]);
  {
    std::vector<size_t> cur(offset.begin(),
                            offset.begin() + static_cast<std::ptrdiff_t>(nv));
    for (const PendingEdge& e : pending_) {
      by_view[cur[e.view]++] =
          EdgeRun{e.query, e.view, e.index,
                  e.index == StructureRef::kNoIndex ? StructureRef::kNoIndex
                                                    : e.index + 1,
                  e.cost};
    }
    pending_.clear();
    pending_.shrink_to_fit();
    for (const EdgeRun& r : loose_runs_) by_view[cur[r.view]++] = r;
    loose_runs_.clear();
    loose_runs_.shrink_to_fit();
    for (auto& batch : run_batches_) {
      for (const EdgeRun& r : batch) by_view[cur[r.view]++] = r;
      batch.clear();
      batch.shrink_to_fit();
    }
    run_batches_.clear();
    run_batches_.shrink_to_fit();
  }
  // Per-view: distinct touched queries (epoch-stamped scratch, no hashing),
  // then dense cost tables with min-merged duplicates (the graph is a
  // multigraph), built via per-column-class prototypes.
  // Column-class dedup scratch. A run's key is its explicit col_class when
  // non-zero (runs promising an identical index-cost column, e.g. the cube
  // builder's per-view selection mask), else ncol + query (no sharing).
  uint32_t ncol = 1;
  for (const EdgeRun& r : by_view) {
    if (r.index_begin != StructureRef::kNoIndex) {
      ncol = std::max(ncol, r.col_class + 1);
    }
  }
  const size_t nkeys = ncol + queries_.size();
  std::vector<uint32_t> stamp(queries_.size(), 0);
  std::vector<uint32_t> pos_of(queries_.size(), 0);
  std::vector<uint32_t> col_stamp(nkeys, 0);
  std::vector<uint32_t> col_pid(nkeys, 0);
  std::vector<uint32_t> col_owner(nkeys, 0);
  std::vector<double> protos;
  std::vector<int32_t> pid_of_pos;
  // Scratch accounting for the build-peak model: the dedup arrays above
  // live for the whole pass; in dense mode each view additionally holds a
  // transient prototype table (in compressed mode the prototypes *are* the
  // result and count as cost-table bytes instead).
  finalize_scratch_bytes_ =
      queries_.size() * (2 * sizeof(uint32_t)) +
      nkeys * (3 * sizeof(uint32_t));
  uint64_t transient_max = 0;
  uint32_t epoch = 0;
  for (uint32_t v = 0; v < nv; ++v) {
    const size_t b = offset[v];
    const size_t e = offset[v + 1];
    if (b == e) continue;
    ++epoch;
    ViewData& vd = views_[v];
    for (size_t i = b; i < e; ++i) {
      uint32_t q = by_view[i].query;
      if (stamp[q] != epoch) {
        stamp[q] = epoch;
        vd.queries.push_back(q);
      }
    }
    std::sort(vd.queries.begin(), vd.queries.end());
    for (uint32_t pos = 0; pos < vd.queries.size(); ++pos) {
      pos_of[vd.queries[pos]] = pos;
    }
    const size_t nq = vd.queries.size();
    const size_t ni = vd.index_spaces.size();
    vd.view_cost.assign(nq, kInfiniteCost);
    // Pass A: view-edge costs, and one prototype id per distinct column
    // class (first query seen becomes the class's owner).
    uint32_t ndist = 0;
    for (size_t i = b; i < e; ++i) {
      const EdgeRun& r = by_view[i];
      if (r.index_begin == StructureRef::kNoIndex) {
        double& slot = vd.view_cost[pos_of[r.query]];
        slot = std::min(slot, r.cost);
        continue;
      }
      const size_t key =
          r.col_class != 0 ? r.col_class : ncol + r.query;
      if (col_stamp[key] != epoch) {
        col_stamp[key] = epoch;
        col_pid[key] = ndist++;
        col_owner[key] = r.query;
      }
    }
    // Pass B: expand only each class owner's runs into its prototype
    // column (a run is one contiguous slice of it), and map every touched
    // query position to its prototype.
    protos.assign(static_cast<size_t>(ndist) * ni, kInfiniteCost);
    pid_of_pos.assign(nq, -1);
    for (size_t i = b; i < e; ++i) {
      const EdgeRun& r = by_view[i];
      if (r.index_begin == StructureRef::kNoIndex) continue;
      const size_t key =
          r.col_class != 0 ? r.col_class : ncol + r.query;
      const uint32_t pid = col_pid[key];
      pid_of_pos[pos_of[r.query]] = static_cast<int32_t>(pid);
      if (r.query == col_owner[key]) {
        double* row = protos.data() + static_cast<size_t>(pid) * ni;
        for (int32_t k = r.index_begin; k < r.index_end; ++k) {
          double& slot = row[static_cast<size_t>(k)];
          slot = std::min(slot, r.cost);
        }
      }
    }
    if (compressed_) {
      // Sparse mode keeps the prototypes themselves; IndexCostAt resolves
      // pos → pid → prototype on demand. The moved-from scratch vectors
      // are re-assigned at the top of the next view's iteration.
      vd.col_protos = std::move(protos);
      vd.col_of_pos = std::move(pid_of_pos);
      continue;
    }
    transient_max = std::max<uint64_t>(
        transient_max, protos.size() * sizeof(double) +
                           pid_of_pos.size() * sizeof(int32_t));
    // Pass C: the k-major table, written sequentially row by row; the
    // prototype reads for one k touch at most ndist cache lines. This
    // ordering is what makes large builds cheap — scattering each run
    // straight into k-major order pays a full cache line (and often a TLB
    // fill) per covered index, ~18M strided writes at dimension 7.
    vd.index_cost.resize(ni * nq);
    double* table = vd.index_cost.data();
    for (size_t k = 0; k < ni; ++k) {
      double* dst = table + k * nq;
      for (size_t pos = 0; pos < nq; ++pos) {
        const int32_t pid = pid_of_pos[pos];
        dst[pos] = pid < 0 ? kInfiniteCost
                           : protos[static_cast<size_t>(pid) * ni + k];
      }
    }
  }
  by_view.clear();
  by_view.shrink_to_fit();
  finalize_scratch_bytes_ += transient_max;
  BuildQueryViews();
  finalized_ = true;
}

void QueryViewGraph::FinalizeStreaming() {
  StreamState& st = *stream_;
  OLAPIDX_CHECK(pending_.empty() && loose_runs_.empty() &&
                run_batches_.empty());
  const size_t nv = views_.size();
  std::vector<uint32_t> perm;       // entry sort permutation
  std::vector<uint32_t> slot_perm;  // slot-by-owner sort permutation
  std::vector<int32_t> pid_of_slot;
  std::vector<double> protos;
  std::vector<int32_t> pos_pid;
  uint64_t running = st.state_bytes;  // sink state + finished tables
  uint64_t scratch_max = 0;
  for (uint32_t v = 0; v < nv; ++v) {
    StreamView& sv = st.views[v];
    ViewData& vd = views_[v];
    const size_t ne = sv.entry_query.size();
    const size_t nslots = sv.slot_key.size();
    const size_t ni = vd.index_spaces.size();
    const uint64_t sv_bytes = ne * kStreamEntryBytes +
                              nslots * kStreamSlotBytes +
                              sv.slot_protos.size() * sizeof(double);
    if (ne != 0) {
      // Entries arrived in per-batch query order; sort globally and merge
      // the (rare outside tests) duplicates a multi-batch query produces.
      perm.resize(ne);
      std::iota(perm.begin(), perm.end(), 0u);
      std::sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
        return sv.entry_query[a] < sv.entry_query[b];
      });
      // Prototype ids in the buffered path follow first appearance in
      // ascending-query arrival order, i.e. ascending class owner; sorting
      // slots by owner reproduces that numbering exactly.
      slot_perm.resize(nslots);
      std::iota(slot_perm.begin(), slot_perm.end(), 0u);
      std::stable_sort(slot_perm.begin(), slot_perm.end(),
                       [&](uint32_t a, uint32_t b) {
                         return sv.slot_owner[a] < sv.slot_owner[b];
                       });
      pid_of_slot.assign(nslots, -1);
      for (size_t i = 0; i < nslots; ++i) {
        pid_of_slot[slot_perm[i]] = static_cast<int32_t>(i);
      }
      protos.assign(nslots * ni, kInfiniteCost);
      for (size_t s = 0; s < nslots; ++s) {
        std::copy_n(sv.slot_protos.begin() +
                        static_cast<std::ptrdiff_t>(s * ni),
                    ni,
                    protos.begin() +
                        static_cast<std::ptrdiff_t>(
                            static_cast<size_t>(pid_of_slot[s]) * ni));
      }
      vd.queries.reserve(ne);
      vd.view_cost.reserve(ne);
      pos_pid.clear();
      pos_pid.reserve(ne);
      for (uint32_t idx : perm) {
        const uint32_t q = sv.entry_query[idx];
        const double cost = sv.entry_cost[idx];
        const int32_t slot = sv.entry_slot[idx];
        const int32_t pid = slot < 0 ? -1 : pid_of_slot[static_cast<size_t>(
                                                slot)];
        if (!vd.queries.empty() && vd.queries.back() == q) {
          vd.view_cost.back() = std::min(vd.view_cost.back(), cost);
          if (pid >= 0) pos_pid.back() = pid;
          continue;
        }
        vd.queries.push_back(q);
        vd.view_cost.push_back(cost);
        pos_pid.push_back(pid);
      }
      const size_t nq = vd.queries.size();
      uint64_t transient = 0;
      if (compressed_) {
        vd.col_protos = std::move(protos);
        vd.col_of_pos = std::move(pos_pid);
        protos = {};
        pos_pid = {};
      } else {
        vd.index_cost.resize(ni * nq);
        double* table = vd.index_cost.data();
        for (size_t k = 0; k < ni; ++k) {
          double* dst = table + k * nq;
          for (size_t pos = 0; pos < nq; ++pos) {
            const int32_t pid = pos_pid[pos];
            dst[pos] = pid < 0 ? kInfiniteCost
                               : protos[static_cast<size_t>(pid) * ni + k];
          }
        }
        transient = protos.size() * sizeof(double) +
                    pos_pid.size() * sizeof(int32_t);
      }
      const uint64_t table_bytes =
          (vd.view_cost.size() + vd.index_cost.size() +
           vd.col_protos.size()) *
              sizeof(double) +
          vd.queries.size() * sizeof(uint32_t) +
          vd.col_of_pos.size() * sizeof(int32_t);
      running += table_bytes;
      const uint64_t scratch =
          transient + (perm.size() + slot_perm.size()) * sizeof(uint32_t) +
          pid_of_slot.size() * sizeof(int32_t);
      scratch_max = std::max(scratch_max, scratch);
      st.peak_bytes = std::max(st.peak_bytes, running + scratch);
    }
    // Free this view's sink state before moving on — the conversion never
    // holds more than one view's worth of both representations.
    sv = StreamView{};
    running -= sv_bytes;
  }
  finalize_scratch_bytes_ = scratch_max;
  streaming_peak_bytes_ = st.peak_bytes;
  stream_.reset();
  BuildQueryViews();
  finalized_ = true;
}

void QueryViewGraph::BuildQueryViews() {
  // Invert the view→queries adjacency. Views are visited in ascending
  // order, so each query's view list comes out sorted.
  query_views_.assign(queries_.size(), {});
  for (uint32_t v = 0; v < num_views(); ++v) {
    for (uint32_t q : views_[v].queries) {
      query_views_[q].push_back(v);
    }
  }
}

namespace {

// FNV-1a over 64-bit words: 8x fewer multiplies than the byte-wise form,
// which matters when hashing a dim-7 dense graph's ~100 MB of cost tables.
inline uint64_t MixWord(uint64_t h, uint64_t word) {
  h ^= word;
  return h * 0x100000001b3ULL;
}

inline uint64_t MixDouble(uint64_t h, double d) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  return MixWord(h, bits);
}

template <typename T>
uint64_t MixSpan(uint64_t h, const std::vector<T>& v) {
  h = MixWord(h, v.size());
  for (const T& x : v) {
    h = MixWord(h, static_cast<uint64_t>(x));
  }
  return h;
}

uint64_t MixDoubleSpan(uint64_t h, const std::vector<double>& v) {
  h = MixWord(h, v.size());
  for (double d : v) {
    h = MixDouble(h, d);
  }
  return h;
}

}  // namespace

uint64_t QueryViewGraph::Fingerprint() const {
  OLAPIDX_CHECK(finalized_);
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  h = MixWord(h, num_views());
  h = MixWord(h, num_queries());
  h = MixWord(h, num_structures_);
  h = MixWord(h, compressed_ ? 1u : 0u);
  for (const QueryData& q : queries_) {
    h = MixDouble(h, q.default_cost);
    h = MixDouble(h, q.frequency);
  }
  for (const ViewData& vd : views_) {
    h = MixDouble(h, vd.space);
    h = MixDouble(h, vd.maintenance);
    h = MixDoubleSpan(h, vd.index_spaces);
    h = MixDoubleSpan(h, vd.index_maintenance);
    h = MixSpan(h, vd.queries);
    h = MixDoubleSpan(h, vd.view_cost);
    h = MixDoubleSpan(h, vd.index_cost);
    h = MixDoubleSpan(h, vd.col_protos);
    h = MixSpan(h, vd.col_of_pos);
  }
  // 0 is reserved as "no fingerprint" in checkpoint files.
  return h == 0 ? 1 : h;
}

uint64_t QueryViewGraph::CostTableBytes() const {
  uint64_t bytes = 0;
  for (const ViewData& vd : views_) {
    bytes += (vd.index_cost.size() + vd.view_cost.size() +
              vd.col_protos.size()) *
             sizeof(double);
    bytes += vd.col_of_pos.size() * sizeof(int32_t);
    bytes += vd.queries.size() * sizeof(uint32_t);
  }
  return bytes;
}

double QueryViewGraph::DefaultTotalCost() const {
  double total = 0.0;
  for (const QueryData& q : queries_) {
    total += q.frequency * q.default_cost;
  }
  return total;
}

}  // namespace olapidx
