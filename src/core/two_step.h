// Baselines against which the paper argues:
//
//  * HruViewGreedy — the [HRU96] greedy under a space constraint, selecting
//    views only (no indexes). This is both the no-index baseline and the
//    first stage of the two-step process.
//  * TwoStep — the industry practice the paper criticizes ([MS95],
//    Example 2.1): split the budget between views and indexes a priori,
//    greedily pick views in the first step, then greedily pick indexes on
//    those views in the second step.

#ifndef OLAPIDX_CORE_TWO_STEP_H_
#define OLAPIDX_CORE_TWO_STEP_H_

#include "core/selection_result.h"

namespace olapidx {

struct TwoStepOptions {
  // Fraction of the budget reserved for indexes (Example 2.1 divides the
  // space equally, i.e. 0.5; the example's moral is that the best split —
  // three quarters there — cannot be known a priori).
  double index_fraction = 0.5;
  // If true, a stage never overshoots its budget (candidates that do not
  // fit are skipped); if false, stages use [HRU96] semantics — keep picking
  // while strictly under budget, allowing the final pick to overshoot.
  bool strict_fit = false;
};

// Views-only greedy with the whole budget (no indexes ever selected).
SelectionResult HruViewGreedy(const QueryViewGraph& graph,
                              double space_budget, bool strict_fit = false);

SelectionResult TwoStep(const QueryViewGraph& graph, double space_budget,
                        const TwoStepOptions& options);

}  // namespace olapidx

#endif  // OLAPIDX_CORE_TWO_STEP_H_
