// The generic, provider-parameterized query-view graph builder — the single
// fast construction path shared by the flat cube (core/cube_graph.cc) and
// the hierarchical lattice (hierarchy/hierarchical_graph.cc). The paper's
// Section 5 algorithms are lattice-agnostic, and so is this builder: it
// owns the phase sequence (structures → queries → sharded parallel edge
// enumeration → deterministic merge → Finalize), the hoisted view-size
// table, the EdgeRun buffering, the index-edge pruning rule, and the
// graph_build.* instrumentation, while a LatticeProvider supplies the
// lattice-specific pieces.
//
// LatticeProvider concept (duck-typed; see CubeLatticeProvider in
// core/cube_graph.cc and HierarchicalLatticeProvider in
// hierarchy/hierarchical_graph.cc):
//
//   uint32_t num_views() const;
//   uint32_t BaseView() const;          // the finest view (default-cost base)
//   double   ViewSizeOf(uint32_t v) const;   // rows of view v (hoisted once)
//   void     InitGraph(QueryViewGraph& g) const;
//       // install the lazy-name machinery (SetNameDictionary / SetIndexNamer)
//   void     AddStructures(QueryViewGraph& g, uint32_t v, double size,
//                          double maintenance) const;
//       // AddView (graph id must equal v), optional SetViewMaintenance,
//       // register all of v's indexes lazily, record any id-mapping metadata
//   size_t   num_queries() const;
//   void     AddQuery(QueryViewGraph& g, size_t qi, double default_cost) const;
//   Ctx      MakeQueryContext() const;  // per-worker scratch, any type
//   void     BeginQuery(Ctx& ctx, size_t qi) const;
//   void     ForEachAnsweringView(Ctx& ctx, Visit&& visit) const;
//       // visit(uint32_t v) for every view that can answer the current query
//   uint32_t IndexColumnClass(Ctx& ctx, uint32_t v) const;
//       // 0 iff v has no indexes; otherwise a non-zero id (< 2^20) such that
//       // queries sharing it have bit-identical index-cost columns at v
//       // (EdgeRun::col_class — lets Finalize() expand one prototype column
//       // per class instead of one per query)
//   void     ForEachIndexCostClass(Ctx& ctx, uint32_t v,
//                                  const double* view_size, Emit&& emit) const;
//       // emit(rank_begin, rank_end, prefix_rows): one call per
//       // prefix-equivalence class of v's index family, covering the
//       // contiguous rank range [rank_begin, rank_end) of index positions
//       // whose longest selection-only key prefix has `prefix_rows`
//       // distinct values (the paper's |E|; the builder turns it into a
//       // cost through the CostModel seam)

#ifndef OLAPIDX_CORE_LATTICE_GRAPH_BUILDER_H_
#define OLAPIDX_CORE_LATTICE_GRAPH_BUILDER_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/graph_build_metrics.h"
#include "core/query_view_graph.h"
#include "cost/cost_model.h"
#include "lattice/attribute_set.h"

namespace olapidx {

// The lattice-independent construction knobs; CubeGraphOptions and
// HierarchicalGraphOptions both reduce to this.
struct LatticeGraphOptions {
  // The default cost T_i of answering a query from raw data. If <= 0, it is
  // raw_scan_penalty × (base view size).
  double default_query_cost = 0.0;
  // Multiplier on the base view's size used for the default cost.
  double raw_scan_penalty = 1.0;
  // Update-aware extension: maintenance cost charged per row of each
  // selected structure. 0 reproduces the paper's space-only model exactly.
  double maintenance_per_row = 0.0;
  // Threads for the edge-enumeration phase. 0 uses the shared pool; any
  // value > 0 builds with a dedicated pool of that size. The resulting
  // graph is identical for every thread count.
  size_t num_threads = 0;
  // Cost model charging every edge (scan, index, and default). Null means
  // the paper's linear model, whose arithmetic matches the historical
  // hard-coded |C|/|E| path bit for bit. The model is read concurrently
  // from worker threads and must outlive the build.
  const CostModel* cost_model = nullptr;
  // Streaming spill window: when > 0, each enumeration shard flushes its
  // EdgeRun buffer into the graph's streaming sink
  // (QueryViewGraph::ConsumeEdgeRuns) at the first query boundary past
  // this many buffered bytes, so peak build memory is bounded by the
  // accumulated per-view tables plus (window × shards) instead of every
  // run at once. 0 keeps the historical buffer-everything path. Both
  // settings produce bit-identical graphs for any thread count (the
  // sink's merge is order-independent; the equivalence tests pin this).
  size_t sink_window_bytes = 0;
};

namespace lattice_build {

inline uint64_t MicrosSince(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace lattice_build

// Walks the r-arrangement tree of `view_mask`'s bits (children in ascending
// bit order — the exact order of CubeLattice::FatIndexes / AllIndexes and
// HierarchicalLattice::FatIndexOrders / AllIndexOrders, with bit i standing
// for the i-th key attribute/dimension) and emits, for each
// prefix-equivalence class, the contiguous rank range [begin, end) of
// arrangements sharing it, with the class's maximal selection-only prefix
// set. Ranks are relative to `base` (the ablation stacks one call per
// arrangement length r on top of the previous lengths' ranks).
//
// The walk only recurses through selection bits: a child ∉ sel seals the
// prefix of its whole subtree, so the subtree collapses to one range
// (consecutive sealed siblings merge into one), and once every remaining
// bit lies in sel — possible only for fat indexes, which consume all of
// them — the subtree collapses to one full-prefix range. Work is therefore
// proportional to the number of emitted classes, not to the number of
// arrangements.
template <typename Emit>
void WalkPrefixClasses(uint32_t view_mask, int m, int r, uint32_t sel,
                       int64_t base, const Emit& emit) {
  // sub[d]: leaves below a depth-d node = A(m-d, r-d) falling factorial.
  int64_t sub[kMaxDimensions + 1];
  sub[r] = 1;
  for (int d = r - 1; d >= 0; --d) sub[d] = sub[d + 1] * (m - d);
  auto rec = [&](auto&& self, int d, uint32_t avail, uint32_t prefix,
                 int64_t rank) -> void {
    if (d == r) {  // complete all-selection arrangement
      emit(rank, rank + 1, prefix);
      return;
    }
    if (r == m && (avail & ~sel) == 0) {  // every completion is all-sel
      emit(rank, rank + sub[d], prefix | avail);
      return;
    }
    const int64_t blk = sub[d + 1];
    int64_t run_begin = -1;
    int64_t run_end = 0;
    int i = 0;
    for (uint32_t rest = avail; rest != 0; rest &= rest - 1, ++i) {
      const uint32_t bit = rest & (~rest + 1u);
      const int64_t child = rank + i * blk;
      if ((bit & sel) != 0) {
        if (run_begin >= 0) {
          emit(run_begin, run_end, prefix);
          run_begin = -1;
        }
        self(self, d + 1, avail & ~bit, prefix | bit, child);
      } else {
        if (run_begin < 0) run_begin = child;
        run_end = child + blk;
      }
    }
    if (run_begin >= 0) emit(run_begin, run_end, prefix);
  };
  rec(rec, 0, view_mask, 0u, base);
}

// Builds `g` from the provider's lattice and workload. The caller validates
// inputs (dimension limits, lattice-size limits, option ranges) and returns
// Status errors *before* calling; this function assumes a well-formed
// problem and never fails.
//
// Edge enumeration: queries partitioned into contiguous chunks, one run
// buffer per chunk. Chunk boundaries depend only on (|W|, thread count) and
// each run's content only on its query, so the merged edge set — and,
// because Finalize() min-merges labels per (view, query, index) slot — the
// finalized graph is identical for every thread count.
//
// Index-edge pruning rule (THE one place it lives; both the flat and the
// hierarchical path inherit it from here, and the retained reference
// builders are tested equivalent to it): an index edge is emitted iff its
// class cost beats a plain scan of the same view, cost < scan. Classes at
// cost == scan are useless (the k = 0 view edge already provides that
// cost), and under the paper model c(Q,V,J) = |V| / |E| can never beat a
// scan through an empty selection-only prefix (|E| is then the apex/all-ALL
// size; when that is 1 the cost *equals* a scan and is pruned — the
// hierarchical apex always has exactly one row, which is why the old
// serial hierarchical builder's `if (prefix.empty()) continue` was the
// same rule in disguise). A calibrated model may additionally prune
// classes whose per-node traversal overhead outweighs the row savings.
template <typename Provider>
void BuildLatticeGraph(const Provider& provider,
                       const LatticeGraphOptions& options, QueryViewGraph& g,
                       graph_build_metrics::BuildStats* stats_out = nullptr) {
  OLAPIDX_TRACE_SPAN("graph_build");
  const auto build_start = std::chrono::steady_clock::now();
  graph_build_metrics::BuildStats stats;

  const CostModel& model = options.cost_model != nullptr
                               ? *options.cost_model
                               : PaperCostModel::Instance();
  const uint32_t nv = provider.num_views();
  // Hoisted size lookups: one per view, shared by view space, index space,
  // maintenance, scan costs, and every prefix-class evaluation (a class's
  // prefix denominator is itself a view size).
  std::vector<double> view_size(nv);
  for (uint32_t v = 0; v < nv; ++v) {
    view_size[v] = provider.ViewSizeOf(v);
  }

  provider.InitGraph(g);

  {
    OLAPIDX_TRACE_SPAN("graph_build.structures");
    for (uint32_t v = 0; v < nv; ++v) {
      const double maintenance =
          options.maintenance_per_row > 0.0
              ? options.maintenance_per_row * view_size[v]
              : 0.0;
      provider.AddStructures(g, v, view_size[v], maintenance);
    }
  }

  const double default_cost =
      options.default_query_cost > 0.0
          ? options.default_query_cost
          : model.ScanCost(options.raw_scan_penalty *
                           view_size[provider.BaseView()]);
  const size_t nq = provider.num_queries();
  for (size_t qi = 0; qi < nq; ++qi) {
    provider.AddQuery(g, qi, default_cost);
  }

  std::optional<ThreadPool> local_pool;
  if (options.num_threads > 0) local_pool.emplace(options.num_threads);
  ThreadPool& pool = local_pool ? *local_pool : ThreadPool::Shared();
  const size_t num_chunks = pool.num_threads();
  const bool streaming = options.sink_window_bytes > 0;
  if (streaming) g.BeginStreamingEdges();
  std::vector<std::vector<EdgeRun>> shard(num_chunks);
  struct ChunkCounters {
    uint64_t view_pairs = 0;
    uint64_t prefix_classes = 0;
    uint64_t index_edges = 0;
    uint64_t perms_skipped = 0;
    uint64_t flushed_bytes = 0;  // total EdgeRun bytes streamed to the sink
    uint64_t max_buffered = 0;   // this shard's buffer high-water
  };
  std::vector<ChunkCounters> counters(num_chunks);
  {
    OLAPIDX_TRACE_SPAN("graph_build.edges");
    pool.ParallelFor(nq, [&](size_t begin, size_t end, size_t chunk) {
      std::vector<EdgeRun>& runs = shard[chunk];
      ChunkCounters& cc = counters[chunk];
      auto ctx = provider.MakeQueryContext();
      auto flush = [&] {
        const uint64_t bytes =
            static_cast<uint64_t>(runs.size()) * sizeof(EdgeRun);
        cc.max_buffered = std::max(cc.max_buffered, bytes);
        cc.flushed_bytes += bytes;
        g.ConsumeEdgeRuns(runs);  // drains; capacity kept for reuse
      };
      for (size_t qi = begin; qi < end; ++qi) {
        const uint32_t q = static_cast<uint32_t>(qi);
        provider.BeginQuery(ctx, qi);
        provider.ForEachAnsweringView(ctx, [&](uint32_t v) {
          const double scan = model.ScanCost(view_size[v]);
          runs.push_back(EdgeRun{q, v, StructureRef::kNoIndex,
                                 StructureRef::kNoIndex, scan});
          ++cc.view_pairs;
          const uint32_t col = provider.IndexColumnClass(ctx, v);
          if (col == 0) return;  // the view has no indexes
          provider.ForEachIndexCostClass(
              ctx, v, view_size.data(),
              [&](int64_t rb, int64_t re, double prefix_rows) {
                ++cc.prefix_classes;
                const double cost =
                    model.IndexCost(view_size[v], prefix_rows);
                if (cost < scan) {
                  runs.push_back(EdgeRun{q, v, static_cast<int32_t>(rb),
                                         static_cast<int32_t>(re), cost,
                                         col});
                  cc.index_edges += static_cast<uint64_t>(re - rb);
                } else {
                  cc.perms_skipped += static_cast<uint64_t>(re - rb);
                }
              });
        });
        // Spill only between queries: the sink requires a query's runs for
        // a view to arrive in one batch.
        if (streaming &&
            runs.size() * sizeof(EdgeRun) >= options.sink_window_bytes) {
          flush();
        }
      }
      if (streaming && !runs.empty()) flush();
    });
  }
  for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
    if (streaming) {
      stats.edge_run_bytes += counters[chunk].flushed_bytes;
      stats.sink_shard_bytes += counters[chunk].max_buffered;
    } else {
      stats.edge_run_bytes +=
          static_cast<uint64_t>(shard[chunk].size()) * sizeof(EdgeRun);
      g.AddEdgeRuns(std::move(shard[chunk]));
    }
    stats.view_pairs += counters[chunk].view_pairs;
    stats.prefix_classes += counters[chunk].prefix_classes;
    stats.index_edges += counters[chunk].index_edges;
    stats.perms_skipped += counters[chunk].perms_skipped;
  }
  stats.enumerate_micros = lattice_build::MicrosSince(build_start);

  const auto finalize_start = std::chrono::steady_clock::now();
  {
    OLAPIDX_TRACE_SPAN("graph_build.finalize");
    g.Finalize();
  }
  stats.finalize_micros = lattice_build::MicrosSince(finalize_start);

  stats.views = nv;
  stats.structures = g.num_structures();
  stats.queries = g.num_queries();
  stats.total_micros = lattice_build::MicrosSince(build_start);
  stats.cost_table_bytes = g.CostTableBytes();
  stats.finalize_scratch_bytes = g.FinalizeScratchBytes();
  if (streaming) {
    // The sink tracked its own high-water (accumulated tables, in-flight
    // batches, and the Finalize conversion); add the other shards' spill
    // windows, which live outside the sink. One window is double-counted
    // (the in-flight batch at the sink's peak moment) — conservative.
    stats.peak_bytes = g.StreamingPeakBytes() + stats.sink_shard_bytes;
  } else {
    // Peak allocation model: Finalize() keeps the counting-sorted run copy
    // (edge_run_bytes) alive while either draining the shard batches
    // (another edge_run_bytes, freed incrementally) or writing the cost
    // tables plus its dedup/prototype scratch, whichever dominates.
    stats.peak_bytes =
        stats.edge_run_bytes +
        std::max(stats.edge_run_bytes,
                 stats.cost_table_bytes + stats.finalize_scratch_bytes);
  }
  graph_build_metrics::RecordBuild(stats);
  if (stats_out != nullptr) *stats_out = stats;
}

}  // namespace olapidx

#endif  // OLAPIDX_CORE_LATTICE_GRAPH_BUILDER_H_
