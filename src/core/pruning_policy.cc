#include "core/pruning_policy.h"

#include <bit>
#include <utility>

namespace olapidx {

QueryPruneResult PruneQueriesByMass(const std::vector<double>& frequency,
                                    size_t top_queries, double query_mass) {
  QueryPruneResult out;
  for (double f : frequency) out.total_mass += f;
  std::vector<uint32_t> order(frequency.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return frequency[a] > frequency[b];
  });
  size_t keep = order.size();
  if (query_mass < 1.0 && out.total_mass > 0.0) {
    const double target = query_mass * out.total_mass;
    double acc = 0.0;
    keep = 0;
    while (keep < order.size() && acc < target) {
      acc += frequency[order[keep]];
      ++keep;
    }
  }
  if (top_queries > 0 && top_queries < keep) {
    keep = top_queries;
  }
  order.resize(keep);
  // Restore input order so retained ids are a subsequence of the input's
  // (and identical to it when nothing is dropped).
  std::sort(order.begin(), order.end());
  for (uint32_t qi : order) out.retained_mass += frequency[qi];
  out.retained = std::move(order);
  return out;
}

std::vector<int> CandidateKeyOrder(uint32_t prefix, uint32_t view_mask) {
  std::vector<int> order;
  for (uint32_t rest = prefix; rest != 0; rest &= rest - 1) {
    order.push_back(std::countr_zero(rest));
  }
  for (uint32_t rest = view_mask & ~prefix; rest != 0; rest &= rest - 1) {
    order.push_back(std::countr_zero(rest));
  }
  return order;
}

}  // namespace olapidx
