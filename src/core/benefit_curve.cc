#include "core/benefit_curve.h"

#include "core/selection_state.h"

namespace olapidx {

std::vector<BenefitCurvePoint> ComputeBenefitCurve(
    const QueryViewGraph& graph, const SelectionResult& result) {
  SelectionState state(&graph);
  std::vector<BenefitCurvePoint> curve;
  curve.push_back(
      BenefitCurvePoint{0.0, state.TotalCost(), StructureRef{}});
  for (const StructureRef& s : result.picks) {
    state.ApplyStructure(s);
    curve.push_back(
        BenefitCurvePoint{state.SpaceUsed(), state.TotalCost(), s});
  }
  return curve;
}

double SpaceForBenefitFraction(
    const std::vector<BenefitCurvePoint>& curve, double fraction) {
  OLAPIDX_CHECK(fraction > 0.0 && fraction <= 1.0);
  OLAPIDX_CHECK(!curve.empty());
  double initial = curve.front().tau;
  double final_tau = curve.back().tau;
  double target = initial - fraction * (initial - final_tau);
  for (const BenefitCurvePoint& p : curve) {
    if (p.tau <= target + 1e-9) return p.space;
  }
  return curve.back().space;
}

}  // namespace olapidx
