// SelectionResult: the output of every selection algorithm — the picked
// structures in pick order, the space they occupy, and τ before/after.

#ifndef OLAPIDX_CORE_SELECTION_RESULT_H_
#define OLAPIDX_CORE_SELECTION_RESULT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "core/query_view_graph.h"

namespace olapidx {

// Per-run telemetry of the selection loop: how much work each stage did
// and how much the benefit cache saved. Filled by the greedy algorithms;
// the branch-and-bound solver leaves everything but total_wall_micros 0.
struct EvaluationStats {
  // Greedy stages executed (= picks made by r-greedy / inner-level).
  uint64_t stages = 0;
  // Per-view evaluations served from the memoized benefit cache (the
  // view's version was unchanged since its last evaluation).
  uint64_t cache_hits = 0;
  // Per-view evaluations actually recomputed (dirty or first touch).
  uint64_t cache_misses = 0;
  // Dirty views whose re-evaluation was skipped because their stale
  // cached ratio — a valid upper bound under submodularity — could not
  // reach the best clean ratio of the stage (generalized CELF prune).
  uint64_t bound_prunes = 0;
  // Wall-clock μs per stage, in stage order, and their total.
  std::vector<uint64_t> stage_wall_micros;
  uint64_t total_wall_micros = 0;
  // Candidate evaluations per stage, parallel to stage_wall_micros; their
  // sum equals candidates_evaluated for the eager algorithms (the lazy
  // 1-greedy heap evaluates across stage boundaries and leaves this
  // empty). Covers only stages executed by this call (resumed runs start
  // fresh).
  std::vector<uint64_t> stage_candidates;
  // Worker threads used for candidate evaluation (1 = serial).
  size_t threads_used = 1;

  double CacheHitRate() const {
    uint64_t total = cache_hits + cache_misses;
    return total > 0 ? static_cast<double>(cache_hits) /
                           static_cast<double>(total)
                     : 0.0;
  }

  // "4 stages, 123 evaluated / 456 cached (78.7% hit), 9 bound-pruned,
  // 1.2 ms, 1 thread".
  std::string ToString() const;
};

// A pick prefix to warm-start a selection run from — the in-memory form of
// an "olapidx-checkpoint v1" artifact (core/serialize.h). The greedy
// algorithms replay the picks into their SelectionState and continue;
// because each stage is a deterministic function of the state, the
// combined pick sequence is bit-identical to an uninterrupted run with the
// same graph, budget, and options.
struct ResumePicks {
  std::vector<StructureRef> picks;     // in original pick order
  std::vector<double> pick_benefits;   // parallel to picks (the a_i)
  // Greedy stages the prefix represents (one stage may pick several
  // structures); seeds EvaluationStats::stages on resume.
  uint64_t stages = 0;
};

struct SelectionResult {
  // Run outcome. OK = ran to completion. An interruption code
  // (status.IsInterruption(): deadline, cancellation, stage budget) =
  // stopped early and `picks` is the valid best-so-far prefix (anytime
  // contract). Any other code = the input was rejected or a fault was
  // injected; treat the result as empty.
  Status status;
  // Convenience mirror: true iff status.ok(). When false, stats.stages is
  // the stage the run stopped at.
  bool completed = true;
  std::vector<StructureRef> picks;  // in selection order
  // Incremental benefit of each pick at the time it was made (the a_i of
  // Theorem 5.1); one entry per pick.
  std::vector<double> pick_benefits;
  double space_used = 0.0;
  double initial_cost = 0.0;  // τ(G, ∅)
  double final_cost = 0.0;    // τ(G, M)
  // Accumulated maintenance cost of the selection (update-aware extension;
  // 0 under the paper's space-only model).
  double total_maintenance = 0.0;
  double total_frequency = 0.0;
  // Number of candidate sets whose benefit was evaluated (work measure).
  uint64_t candidates_evaluated = 0;
  // Number of index subsets skipped by the max_subsets_per_view cap across
  // all performed evaluations (0 = the enumeration was exhaustive; cached
  // evaluations are not re-counted).
  uint64_t candidates_truncated = 0;
  // Beam selection (RGreedyOptions / InnerGreedyOptions::beam_width):
  // dirty views whose re-evaluation was skipped by the per-stage beam cap.
  // Unlike bound_prunes these are *not* provably non-winning — the
  // a-posteriori guarantee below accounts for them.
  uint64_t beam_skipped = 0;
  // A-posteriori guarantee of a beam-limited run: the minimum over stages
  // of ρ_picked / max(ρ_picked, best skipped stale bound). Every stage's
  // pick achieved at least this fraction of the best benefit-per-space
  // ratio any beam-skipped candidate could have offered at that stage.
  // 1.0 when nothing was ever skipped (beam_width = 0 or a wide beam);
  // then the run is exactly the unbeamed greedy.
  double beam_stage_factor = 1.0;
  // Work/caching/timing telemetry of the selection loop.
  EvaluationStats stats;
  // Process-wide metrics registry delta attributed to this run — captured
  // fresh per call (never accumulated across runs reusing an Advisor or
  // options object), empty under OLAPIDX_METRICS=OFF. Concurrent
  // selections in other threads bleed into each other's deltas; the
  // repository's entry points run selections serially.
  MetricsSnapshot metrics;
  // True iff the result is provably optimal for its budget (set only by the
  // branch-and-bound solver when it runs to completion).
  bool proven_optimal = false;

  // An empty result carrying a rejection status (malformed input, injected
  // fault): the uniform "total function" failure value of the selection
  // entry points.
  static SelectionResult Rejected(Status status) {
    SelectionResult result;
    result.status = std::move(status);
    result.completed = false;
    return result;
  }

  // B(M, ∅), the absolute benefit of the selection (net of maintenance).
  double Benefit() const {
    return initial_cost - final_cost - total_maintenance;
  }

  // Frequency-weighted average query cost, the metric Example 2.1 reports
  // ("an average query cost of 0.74M rows").
  double AverageQueryCost() const {
    return total_frequency > 0.0 ? final_cost / total_frequency : 0.0;
  }

  // Human-readable list of picked structures: "psc, I_ps(psc), ...".
  std::string PicksToString(const QueryViewGraph& graph) const;
};

}  // namespace olapidx

#endif  // OLAPIDX_CORE_SELECTION_RESULT_H_
