// SelectionResult: the output of every selection algorithm — the picked
// structures in pick order, the space they occupy, and τ before/after.

#ifndef OLAPIDX_CORE_SELECTION_RESULT_H_
#define OLAPIDX_CORE_SELECTION_RESULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/query_view_graph.h"

namespace olapidx {

struct SelectionResult {
  std::vector<StructureRef> picks;  // in selection order
  // Incremental benefit of each pick at the time it was made (the a_i of
  // Theorem 5.1); one entry per pick.
  std::vector<double> pick_benefits;
  double space_used = 0.0;
  double initial_cost = 0.0;  // τ(G, ∅)
  double final_cost = 0.0;    // τ(G, M)
  // Accumulated maintenance cost of the selection (update-aware extension;
  // 0 under the paper's space-only model).
  double total_maintenance = 0.0;
  double total_frequency = 0.0;
  // Number of candidate sets whose benefit was evaluated (work measure).
  uint64_t candidates_evaluated = 0;
  // True iff the result is provably optimal for its budget (set only by the
  // branch-and-bound solver when it runs to completion).
  bool proven_optimal = false;

  // B(M, ∅), the absolute benefit of the selection (net of maintenance).
  double Benefit() const {
    return initial_cost - final_cost - total_maintenance;
  }

  // Frequency-weighted average query cost, the metric Example 2.1 reports
  // ("an average query cost of 0.74M rows").
  double AverageQueryCost() const {
    return total_frequency > 0.0 ? final_cost / total_frequency : 0.0;
  }

  // Human-readable list of picked structures: "psc, I_ps(psc), ...".
  std::string PicksToString(const QueryViewGraph& graph) const;
};

}  // namespace olapidx

#endif  // OLAPIDX_CORE_SELECTION_RESULT_H_
