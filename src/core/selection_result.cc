#include "core/selection_result.h"

#include <cstdio>

namespace olapidx {

std::string EvaluationStats::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "%llu stages, %llu evaluated / %llu cached (%.1f%% hit), "
                "%llu bound-pruned, %.1f ms, %zu thread%s",
                static_cast<unsigned long long>(stages),
                static_cast<unsigned long long>(cache_misses),
                static_cast<unsigned long long>(cache_hits),
                100.0 * CacheHitRate(),
                static_cast<unsigned long long>(bound_prunes),
                static_cast<double>(total_wall_micros) / 1000.0,
                threads_used, threads_used == 1 ? "" : "s");
  return buf;
}

std::string SelectionResult::PicksToString(
    const QueryViewGraph& graph) const {
  std::string out;
  for (const StructureRef& s : picks) {
    if (!out.empty()) out += ", ";
    out += graph.StructureName(s);
  }
  return out;
}

}  // namespace olapidx
