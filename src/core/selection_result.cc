#include "core/selection_result.h"

namespace olapidx {

std::string SelectionResult::PicksToString(
    const QueryViewGraph& graph) const {
  std::string out;
  for (const StructureRef& s : picks) {
    if (!out.empty()) out += ", ";
    out += graph.StructureName(s);
  }
  return out;
}

}  // namespace olapidx
