// QueryViewGraph: the bipartite multigraph of Section 5.1 — the input to
// every selection algorithm in this library.
//
//  * Views carry a space cost and a list of indexes (each with its own space
//    cost).
//  * Queries carry a default cost T_i (answering from raw data) and a
//    frequency f_i.
//  * Edges (q, v) are labelled (k, t) — the cost of answering q from view v
//    with v's k-th index; k = kNoIndex means using the view alone.
//
// The algorithms' correctness does not depend on where the costs come from:
// graphs can be built from a cube lattice + cost model (core/cube_graph.h)
// or assembled by hand (Example 5.1, adversarial instances, tests).

#ifndef OLAPIDX_CORE_QUERY_VIEW_GRAPH_H_
#define OLAPIDX_CORE_QUERY_VIEW_GRAPH_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "lattice/index_key.h"

namespace olapidx {

// Identifies a structure (Section 5's term): a view, or one of its indexes.
struct StructureRef {
  uint32_t view = 0;
  // kNoIndex for the view itself, otherwise the index position within the
  // view's index list.
  int32_t index = kNoIndex;

  static constexpr int32_t kNoIndex = -1;

  bool is_view() const { return index == kNoIndex; }

  friend bool operator==(const StructureRef& a, const StructureRef& b) {
    return a.view == b.view && a.index == b.index;
  }
};

// A group of edges (q, v, k, cost) sharing one cost for a contiguous range
// of index positions k ∈ [index_begin, index_end). index_begin == kNoIndex
// denotes the single k = kNoIndex view edge. The fast graph builder emits
// one run per prefix-equivalence class instead of one edge per index
// permutation, so intermediate edge storage is O(#classes), not O(#edges).
struct EdgeRun {
  uint32_t query = 0;
  uint32_t view = 0;
  int32_t index_begin = StructureRef::kNoIndex;
  int32_t index_end = StructureRef::kNoIndex;  // exclusive; ignored for views
  double cost = 0.0;
  // Column-equivalence class id, a small dense integer. Within one view,
  // index runs carrying the same non-zero col_class promise the *same*
  // dense index-cost column (the cube builder uses selection-mask ∩ view
  // + 1: query cost depends only on that intersection), so Finalize()
  // expands one prototype per class instead of one column per query. 0
  // means "no sharing" — the run only contributes to its own query.
  uint32_t col_class = 0;
};

class QueryViewGraph {
 public:
  static constexpr double kInfiniteCost =
      std::numeric_limits<double>::infinity();

  // Out of line: the streaming sink state is an incomplete type here.
  QueryViewGraph();
  QueryViewGraph(QueryViewGraph&&) noexcept;
  QueryViewGraph& operator=(QueryViewGraph&&) noexcept;
  ~QueryViewGraph();

  // ---- Construction (call Finalize() when done) ----

  // Returns the new view's id.
  uint32_t AddView(std::string name, double space);
  // Returns the new index's position within `view`'s index list.
  int32_t AddIndex(uint32_t view, std::string name, double space);
  // Returns the new query's id.
  uint32_t AddQuery(std::string name, double default_cost,
                    double frequency = 1.0);

  // ---- Lazy index registration (fast builder path) ----
  //
  // Registers all of `view`'s indexes at once by their IndexKey handles;
  // names are rendered on demand by index_name() from the attribute-name
  // dictionary (SetNameDictionary) instead of being materialized up front —
  // at n = 8 that is ~110k strings the build never creates. All indexes of
  // a cube view share one space/maintenance figure under the linear cost
  // model. A view uses either AddIndex (eager names) or AddIndexes (lazy),
  // never both.
  void SetNameDictionary(std::vector<std::string> attr_names);
  void AddIndexes(uint32_t view, std::vector<IndexKey> keys,
                  double space_each, double maintenance_each = 0.0);

  // Callback-named variant for lattices whose index handles are not
  // IndexKeys (the hierarchical lattice keys indexes by dimension *order*,
  // not attribute set): registers `count` indexes for `view` by position
  // only; index_name(view, k) defers to the namer installed here, which
  // must render the same name the eager path would have materialized. The
  // namer must be self-contained (capture by value) — it outlives the
  // construction phase and is consulted on demand.
  void SetIndexNamer(std::function<std::string(uint32_t, int32_t)> namer);
  void AddIndexesNamed(uint32_t view, int32_t count, double space_each,
                       double maintenance_each = 0.0);

  // Cost of answering `query` from `view` with no index (k = 0 edge).
  void AddViewEdge(uint32_t query, uint32_t view, double cost);
  // Cost of answering `query` from `view` with its `index`-th index.
  void AddIndexEdge(uint32_t query, uint32_t view, int32_t index,
                    double cost);
  // One cost for every index k ∈ [index_begin, index_end) of `view`.
  void AddIndexEdgeRun(uint32_t query, uint32_t view, int32_t index_begin,
                       int32_t index_end, double cost);
  // Appends a whole shard buffer of runs (view edges use
  // index_begin == kNoIndex). Batches are kept intact and merged by
  // Finalize(); each is validated here and freed as soon as its runs have
  // been scattered into the per-view tables.
  void AddEdgeRuns(std::vector<EdgeRun> runs);

  // ---- Streaming construction (bounded-memory builder path) ----
  //
  // BeginStreamingEdges() switches edge ingestion from buffer-everything
  // (AddEdgeRuns + Finalize merge) to a bounded sink: ConsumeEdgeRuns()
  // drains each shard buffer straight into per-view accumulation state —
  // the future query lists, view-cost columns, and per-class prototype
  // columns — so peak memory during construction is the finished tables
  // plus the in-flight shard windows, not every EdgeRun at once. The
  // accumulation is order-independent (duplicate labels min-merge; each
  // class's prototype is owned by its lowest query id and rebuilt if a
  // lower owner arrives), so any flush interleaving finalizes into a graph
  // bit-identical to the buffered path — the equivalence tests pin this.
  //
  // Contract: call after every AddView / AddIndexes* / AddQuery and before
  // Finalize(); a query's runs for one view must all arrive within a
  // single ConsumeEdgeRuns() call (the builder flushes only at query
  // boundaries). Streaming and buffered ingestion are mutually exclusive.
  void BeginStreamingEdges();
  bool streaming_edges() const { return stream_ != nullptr; }
  // Thread-safe; drains and clears `runs`, keeping its capacity for reuse.
  void ConsumeEdgeRuns(std::vector<EdgeRun>& runs);
  // High-water mark (bytes) of the sink state, including in-flight batches
  // and the Finalize() conversion into the final tables. 0 in buffered
  // mode.
  uint64_t StreamingPeakBytes() const;

  // Scratch high-water of the last Finalize(): class-id dedup maps, query
  // stamps, and the per-view transient prototype expansion — the part of
  // the true build peak graph_build.peak_bytes historically missed.
  uint64_t FinalizeScratchBytes() const { return finalize_scratch_bytes_; }

  // Optional maintenance (refresh) cost charged once when the structure is
  // selected; the algorithms maximize benefit *net* of maintenance. The
  // default of 0 reproduces the paper's space-only model exactly. May be
  // set before or after Finalize(). This is the update-aware extension in
  // the spirit of [G97]'s general framework.
  void SetViewMaintenance(uint32_t view, double cost);
  void SetIndexMaintenance(uint32_t view, int32_t index, double cost);
  double structure_maintenance(StructureRef s) const {
    return s.is_view()
               ? views_[s.view].maintenance
               : views_[s.view]
                     .index_maintenance[static_cast<size_t>(s.index)];
  }

  // Sparse storage mode: keep one prototype cost column per column class
  // plus a position→class map instead of expanding the dense k-major
  // index-cost table in Finalize(). IndexCostAt() then resolves through
  // one extra indirection but returns bit-identical values — the dense
  // table is itself expanded from exactly these prototypes. Memory drops
  // from O(ni · nq) to O(ni · #classes + nq) doubles per view, which is
  // what makes dimension 12–20 builds fit in memory. Must be called
  // before Finalize().
  void SetCompressedCostColumns(bool on = true) {
    OLAPIDX_CHECK(!finalized_);
    compressed_ = on;
  }
  bool compressed_cost_columns() const { return compressed_; }

  // Compacts edges into per-view dense cost tables. Must be called exactly
  // once, before any algorithm runs.
  void Finalize();
  bool finalized() const { return finalized_; }

  // Content fingerprint of the finalized graph: a 64-bit hash over the
  // view/query/structure counts, per-structure spaces and maintenance
  // costs, query default costs and frequencies, and every finalized cost
  // table, mixed word-at-a-time (FNV-1a over the 64-bit bit patterns, so
  // it is bit-exact across platforms for identical doubles). Two graphs
  // built from the same schema, sizes, workload, and options — in the same
  // storage mode (dense vs compressed columns) — hash identically; any
  // drift in inputs changes the fingerprint. Checkpoints are stamped with
  // this value so a resume against a different graph is rejected instead
  // of silently resolving picks against the wrong costs. Requires
  // finalized(); never returns 0 (0 is the "no fingerprint" sentinel in
  // checkpoint files).
  uint64_t Fingerprint() const;

  // Bytes held by the finalized per-view cost tables (dense k-major tables
  // or compressed prototypes, view-cost columns, and query lists). The
  // dominant term of the graph's resident footprint; feeds the
  // graph_build.peak_bytes gauge.
  uint64_t CostTableBytes() const;

  // ---- Introspection ----

  uint32_t num_views() const { return static_cast<uint32_t>(views_.size()); }
  uint32_t num_queries() const {
    return static_cast<uint32_t>(queries_.size());
  }
  // Total number of structures (views + indexes), the paper's `m`.
  uint32_t num_structures() const { return num_structures_; }

  const std::string& view_name(uint32_t v) const { return views_[v].name; }
  double view_space(uint32_t v) const { return views_[v].space; }
  int32_t num_indexes(uint32_t v) const {
    return static_cast<int32_t>(views_[v].index_spaces.size());
  }
  // Rendered on demand for lazily-registered indexes (hence by value):
  // eager names win, then IndexKey handles, then the installed namer.
  std::string index_name(uint32_t v, int32_t k) const {
    const ViewData& vd = views_[v];
    if (!vd.index_names.empty()) {
      return vd.index_names[static_cast<size_t>(k)];
    }
    if (!vd.lazy_keys.empty()) {
      return vd.lazy_keys[static_cast<size_t>(k)].ToString(attr_names_);
    }
    OLAPIDX_DCHECK(index_namer_ != nullptr);
    return index_namer_(v, k);
  }
  // The key handle of a lazily-registered index (AddIndexes views only).
  const IndexKey& index_key(uint32_t v, int32_t k) const {
    OLAPIDX_DCHECK(static_cast<size_t>(k) < views_[v].lazy_keys.size());
    return views_[v].lazy_keys[static_cast<size_t>(k)];
  }
  double index_space(uint32_t v, int32_t k) const {
    return views_[v].index_spaces[static_cast<size_t>(k)];
  }
  double structure_space(StructureRef s) const {
    return s.is_view() ? view_space(s.view) : index_space(s.view, s.index);
  }
  std::string StructureName(StructureRef s) const {
    return s.is_view() ? view_name(s.view)
                       : index_name(s.view, s.index) + "(" +
                             view_name(s.view) + ")";
  }

  const std::string& query_name(uint32_t q) const { return queries_[q].name; }
  double query_default_cost(uint32_t q) const {
    return queries_[q].default_cost;
  }
  double query_frequency(uint32_t q) const { return queries_[q].frequency; }

  // τ(G, ∅): total cost with nothing materialized.
  double DefaultTotalCost() const;

  // ---- Per-view edge tables (valid after Finalize) ----

  // Queries that have at least one edge to `v`.
  const std::vector<uint32_t>& ViewQueries(uint32_t v) const {
    OLAPIDX_DCHECK(finalized_);
    return views_[v].queries;
  }
  // Inverse of ViewQueries: views that have at least one edge to `q`, in
  // ascending view order. This is the invalidation fan-out the selection
  // algorithms use — when a pick improves q, exactly these views' benefits
  // can change.
  const std::vector<uint32_t>& QueryViews(uint32_t q) const {
    OLAPIDX_DCHECK(finalized_);
    return query_views_[q];
  }
  // Cost of answering ViewQueries(v)[pos] from v alone (kInfiniteCost if
  // there is no k = 0 edge).
  double ViewCostAt(uint32_t v, size_t pos) const {
    return views_[v].view_cost[pos];
  }
  // Cost of answering ViewQueries(v)[pos] from v with index k. Dense mode
  // reads the k-major table; compressed mode resolves pos → column class →
  // prototype, yielding the same double (the dense table is expanded from
  // the prototypes).
  double IndexCostAt(uint32_t v, int32_t k, size_t pos) const {
    const ViewData& vd = views_[v];
    if (!vd.index_cost.empty()) {
      return vd.index_cost[static_cast<size_t>(k) * vd.queries.size() + pos];
    }
    const int32_t pid = vd.col_of_pos.empty() ? -1 : vd.col_of_pos[pos];
    return pid < 0 ? kInfiniteCost
                   : vd.col_protos[static_cast<size_t>(pid) *
                                       vd.index_spaces.size() +
                                   static_cast<size_t>(k)];
  }

 private:
  struct ViewData {
    std::string name;
    double space = 0.0;
    double maintenance = 0.0;
    // Eager path: index_names parallel to index_spaces. Lazy path:
    // index_names stays empty and lazy_keys holds the handles instead.
    std::vector<std::string> index_names;
    std::vector<IndexKey> lazy_keys;
    std::vector<double> index_spaces;
    std::vector<double> index_maintenance;
    // Populated by Finalize():
    std::vector<uint32_t> queries;   // queries with any edge to this view
    std::vector<double> view_cost;   // parallel to `queries`
    std::vector<double> index_cost;  // dense mode: [k * queries.size() + pos]
    // Compressed mode (index_cost stays empty): one prototype column per
    // distinct column class, pid-major [pid * num_indexes + k], plus the
    // position→class map (-1 = no index edges for that query).
    std::vector<double> col_protos;
    std::vector<int32_t> col_of_pos;
  };
  struct QueryData {
    std::string name;
    double default_cost = 0.0;
    double frequency = 1.0;
  };
  struct PendingEdge {
    uint32_t query;
    uint32_t view;
    int32_t index;  // StructureRef::kNoIndex for a view edge
    double cost;
  };

  struct StreamView;
  struct StreamState;

  void ValidateRun(const EdgeRun& run) const;
  void FinalizeStreaming();
  void BuildQueryViews();

  std::vector<ViewData> views_;
  std::vector<QueryData> queries_;
  std::vector<std::string> attr_names_;             // for lazy index names
  std::function<std::string(uint32_t, int32_t)> index_namer_;
  std::vector<std::vector<uint32_t>> query_views_;  // built by Finalize()
  std::vector<PendingEdge> pending_;
  std::vector<EdgeRun> loose_runs_;                 // AddIndexEdgeRun
  std::vector<std::vector<EdgeRun>> run_batches_;   // AddEdgeRuns shards
  std::unique_ptr<StreamState> stream_;             // BeginStreamingEdges
  uint64_t streaming_peak_bytes_ = 0;
  uint64_t finalize_scratch_bytes_ = 0;
  uint32_t num_structures_ = 0;
  bool finalized_ = false;
  bool compressed_ = false;
};

}  // namespace olapidx

#endif  // OLAPIDX_CORE_QUERY_VIEW_GRAPH_H_
