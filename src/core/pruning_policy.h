// The pruning-policy layer of the sparse build path: the lattice-agnostic
// pieces of PR 6's workload pruning, extracted from the flat sparse builder
// so the hierarchical builder composes the same policies over its own
// lattice (hierarchy/hierarchical_graph.h, TryBuildSparseHierarchicalCubeGraph).
//
// One place states what each policy may drop:
//
//   * Query pruning (PruneQueriesByMass) drops the cold tail of the
//     workload — queries outside the smallest hottest-first prefix
//     reaching `query_mass` of the total frequency, and beyond the
//     `top_queries` cap. Dropped queries contribute nothing to the built
//     graph; their mass is recorded (SparseBuildStats::dropped_mass) so
//     the quality loss is visible, never silent.
//   * View retention (RetainSupersetViews) drops lattice views that either
//     cannot answer any retained query (outside every superset cone — pure
//     waste, no quality loss) or fall past the `max_views` soft cap
//     (quality-trading; counted in views_dropped and flagged by
//     view_cap_hit). The base view and each retained query's minimal
//     answering view are exempt from the cap, so every retained query
//     always keeps at least one answering view.
//   * Candidate index families (CandidateKeyOrder + the per-lattice
//     collectors) drop index permutations of wide views that no retained
//     query's selection can use as a longest prefix; each retained query
//     keeps a key realizing its best possible prefix, so per-query best
//     costs are preserved exactly (pinned by test).
//
// Everything here is deterministic and arithmetic-free: the policies pick
// *which* queries/views/keys exist; all costs still flow through the one
// generic builder (core/lattice_graph_builder.h).

#ifndef OLAPIDX_CORE_PRUNING_POLICY_H_
#define OLAPIDX_CORE_PRUNING_POLICY_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <vector>

#include "core/graph_build_metrics.h"

namespace olapidx {

// Stats shared by every pruned (sparse) build, flat or hierarchical.
struct SparseBuildStats {
  size_t workload_queries = 0;
  size_t retained_queries = 0;
  double total_mass = 0.0;
  double retained_mass = 0.0;
  // Frequency mass of the dropped queries (= total_mass - retained_mass),
  // recorded explicitly so the quality cost of pruning is never silent.
  double dropped_mass = 0.0;
  size_t retained_views = 0;
  bool view_cap_hit = false;
  // Superset-cone views the max_views cap excluded. Counting them exactly
  // can cost as much as enumerating the cones, so the post-cap sweep is
  // budgeted; views_dropped_truncated marks a saturated count (the true
  // number is at least views_dropped).
  uint64_t views_dropped = 0;
  bool views_dropped_truncated = false;
  // Views carrying the full fat family vs a workload-derived one.
  size_t fat_views = 0;
  size_t candidate_views = 0;
  uint64_t candidate_indexes = 0;
  // The generic builder's totals for this build (edge counts, timings,
  // peak_bytes).
  graph_build_metrics::BuildStats build;
};

// Query-pruning policy: hottest-first (stable on input order), keep the
// smallest prefix reaching query_mass × total, cap at top_queries
// (0 = uncapped), then restore input order — retained ids are an ascending
// subsequence of the input, identical to it when nothing is dropped.
struct QueryPruneResult {
  std::vector<uint32_t> retained;  // original query indices, ascending
  double total_mass = 0.0;
  double retained_mass = 0.0;
};
QueryPruneResult PruneQueriesByMass(const std::vector<double>& frequency,
                                    size_t top_queries, double query_mass);

// View-retention policy over any lattice whose views have dense ids in
// [0, lattice_views). Keeps `base_id`, every query's minimal answering
// view (cap-exempt), then superset cones hottest-queries-first up to
// `max_views`. Callbacks:
//   minimal_of(q)    -> the query's minimal answering view id (its A ∪ B /
//                       required-levels view)
//   cone(q, visit)   -> call visit(view_id) for every lattice view able to
//                       answer query q; stop early when visit returns false
// `hot_order` lists retained query positions hottest-first (ties in input
// order). The result's view ids are sorted ascending and id_of inverts
// them (-1 / -2 = not retained), so unpruned lattices keep their original
// ids.
struct ViewRetentionResult {
  std::vector<uint64_t> view_ids;  // retained lattice ids, ascending
  std::vector<int32_t> id_of;      // lattice id -> dense id, < 0 if dropped
  bool cap_hit = false;
  uint64_t views_dropped = 0;
  bool views_dropped_truncated = false;
};

template <typename MinimalFn, typename ConeFn>
ViewRetentionResult RetainSupersetViews(uint64_t lattice_views,
                                        uint64_t base_id,
                                        const std::vector<uint32_t>& hot_order,
                                        size_t max_views,
                                        MinimalFn&& minimal_of,
                                        ConeFn&& cone) {
  ViewRetentionResult out;
  out.id_of.assign(static_cast<size_t>(lattice_views), -1);
  auto mark = [&](uint64_t id) {
    if (out.id_of[static_cast<size_t>(id)] == -1) {
      out.id_of[static_cast<size_t>(id)] = 0;  // real ids assigned below
      out.view_ids.push_back(id);
    }
  };
  mark(base_id);
  for (uint32_t qi : hot_order) {
    mark(minimal_of(qi));
  }
  // Post-cap, keep sweeping (within a budget) to count what the cap cost
  // instead of breaking silently: every first-seen view past the cap is a
  // dropped view (-2 marks it both counted and not-retained).
  int64_t sweep_budget =
      16 * static_cast<int64_t>(std::max<size_t>(max_views, 4096));
  for (uint32_t qi : hot_order) {
    if (out.view_ids.size() >= max_views && sweep_budget <= 0) break;
    cone(qi, [&](uint64_t id) {
      if (out.view_ids.size() < max_views) {
        mark(id);
        return true;
      }
      if (out.id_of[static_cast<size_t>(id)] == -1) {
        out.cap_hit = true;
        out.id_of[static_cast<size_t>(id)] = -2;
        ++out.views_dropped;
      }
      return --sweep_budget > 0;
    });
  }
  if (sweep_budget <= 0) out.views_dropped_truncated = true;
  std::sort(out.view_ids.begin(), out.view_ids.end());
  for (size_t v = 0; v < out.view_ids.size(); ++v) {
    out.id_of[static_cast<size_t>(out.view_ids[v])] =
        static_cast<int32_t>(v);
  }
  return out;
}

// Candidate-key policy: the dimension/attribute order of the one fat key
// serving a distinct selection class `prefix` at a wide view: the prefix
// bits ascending, then the view's remaining bits ascending. Bit i stands
// for attribute/dimension i (the same convention as WalkPrefixClasses).
std::vector<int> CandidateKeyOrder(uint32_t prefix, uint32_t view_mask);

// Collects the distinct non-empty selection classes (selection ∩ view, as
// bit masks) of the retained queries answerable at a wide view: call
// class_of(q) for each retained query position; a return of 0 means "not
// answerable or empty selection — no key". Sorted ascending, deduped, so
// key families are deterministic in the workload.
template <typename ClassOf>
std::vector<uint32_t> CollectCandidateClasses(size_t num_queries,
                                              ClassOf&& class_of) {
  std::vector<uint32_t> classes;
  for (size_t q = 0; q < num_queries; ++q) {
    const uint32_t p = class_of(q);
    if (p != 0) classes.push_back(p);
  }
  std::sort(classes.begin(), classes.end());
  classes.erase(std::unique(classes.begin(), classes.end()), classes.end());
  return classes;
}

}  // namespace olapidx

#endif  // OLAPIDX_CORE_PRUNING_POLICY_H_
