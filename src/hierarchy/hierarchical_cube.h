// The hierarchical cube lattice and its slice queries.
//
// A view assigns each dimension one level (possibly ALL); view V1 is
// computable from V2 iff V2 is at least as fine in every dimension. A
// hierarchical slice query gives each dimension a role — absent (aggregate
// over it), group-by at a level, or select at a level. Fat indexes are
// permutations of the view's non-ALL dimensions, keyed at the view's
// levels; with hierarchically clustered key encodings (day codes ordered
// within month, etc. — standard ROLAP practice) an index prefix serves
// selections at the same or any coarser level.

#ifndef OLAPIDX_HIERARCHY_HIERARCHICAL_CUBE_H_
#define OLAPIDX_HIERARCHY_HIERARCHICAL_CUBE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "hierarchy/hierarchical_schema.h"

namespace olapidx {

// A level assignment: one level index per dimension (ALL = num_levels).
class LevelVector {
 public:
  LevelVector() = default;
  explicit LevelVector(std::vector<int> levels)
      : levels_(std::move(levels)) {}

  int size() const { return static_cast<int>(levels_.size()); }
  int level(int d) const { return levels_[static_cast<size_t>(d)]; }
  void set_level(int d, int level) {
    levels_[static_cast<size_t>(d)] = level;
  }
  const std::vector<int>& levels() const { return levels_; }

  // True iff a view at `*this` can be computed from a view at `other`
  // (other is at least as fine everywhere: other.level[d] <= level[d]).
  bool ComputableFrom(const LevelVector& other) const;

  friend bool operator==(const LevelVector& a, const LevelVector& b) {
    return a.levels_ == b.levels_;
  }

 private:
  std::vector<int> levels_;
};

// A hierarchical slice query: per-dimension role.
struct HDimRole {
  enum Kind { kAbsent, kGroupBy, kSelect };
  Kind kind = kAbsent;
  int level = 0;  // meaningful unless kAbsent
};

class HSliceQuery {
 public:
  HSliceQuery() = default;
  explicit HSliceQuery(std::vector<HDimRole> roles)
      : roles_(std::move(roles)) {}

  const std::vector<HDimRole>& roles() const { return roles_; }
  const HDimRole& role(int d) const {
    return roles_[static_cast<size_t>(d)];
  }

  // The coarsest view that can answer this query (its associated view):
  // mentioned dimensions at their query level, absent dimensions at ALL.
  LevelVector RequiredLevels(const HierarchicalSchema& schema) const;

  bool AnswerableFrom(const LevelVector& view,
                      const HierarchicalSchema& schema) const;

  std::string ToString(const HierarchicalSchema& schema) const;

 private:
  std::vector<HDimRole> roles_;
};

// Dense view ids via mixed-radix encoding of the level vector.
using HViewId = uint64_t;

class HierarchicalLattice {
 public:
  explicit HierarchicalLattice(const HierarchicalSchema* schema);

  const HierarchicalSchema& schema() const { return *schema_; }
  uint64_t num_views() const { return num_views_; }

  HViewId IdOf(const LevelVector& levels) const;
  LevelVector LevelsOf(HViewId id) const;

  // The mixed-radix weight of dimension d in the view encoding:
  // IdOf(levels) = Σ_d levels[d] · stride(d). Ascending with d, so counting
  // dimension 0 fastest enumerates ids in ascending order.
  uint64_t stride(int d) const { return strides_[static_cast<size_t>(d)]; }

  // The base view: every dimension at its finest level.
  HViewId BaseView() const { return IdOf(FinestLevels()); }
  LevelVector FinestLevels() const;

  // Π cardinality(d, level_d): the domain size of a view.
  double DomainSize(const LevelVector& levels) const;

  // "store.city|day.month|promo.ALL"-style name.
  std::string ViewName(const LevelVector& levels) const;

  // The dimensions of a view that are not at ALL (eligible index-key
  // dimensions), ascending.
  std::vector<int> ActiveDimensions(const LevelVector& levels) const;

  // All fat indexes of the view: permutations of its active dimensions.
  // Requires <= 8 active dimensions.
  std::vector<std::vector<int>> FatIndexOrders(
      const LevelVector& levels) const;

  // Every ordered subset of the view's active dimensions (the fat-index
  // pruning ablation family), listed by length r = 1..m and
  // lexicographically within each length — the exact counterpart of
  // CubeLattice::AllIndexes. Requires <= 6 active dimensions.
  std::vector<std::vector<int>> AllIndexOrders(
      const LevelVector& levels) const;

  // Expected rows of every view for a raw table of `raw_rows` rows, under
  // the independence model (cost/analytical_model.h applied to the
  // hierarchical domain sizes). Index = HViewId.
  std::vector<double> AnalyticalSizes(double raw_rows) const;

 private:
  const HierarchicalSchema* schema_;
  std::vector<uint64_t> strides_;
  uint64_t num_views_ = 1;
};

// All hierarchical slice queries: each dimension independently absent,
// grouped at one of its levels, or selected at one of its levels —
// Π_d (1 + 2·num_levels(d)) queries. (With one level per dimension this
// degenerates to the paper's 3^n.)
std::vector<HSliceQuery> EnumerateAllHQueries(
    const HierarchicalSchema& schema);

}  // namespace olapidx

#endif  // OLAPIDX_HIERARCHY_HIERARCHICAL_CUBE_H_
