#include "hierarchy/hierarchical_schema.h"

namespace olapidx {

namespace {
const std::string kAllName = "ALL";
}  // namespace

HierarchicalSchema::HierarchicalSchema(
    std::vector<HierarchicalDimension> dims)
    : dimensions_(std::move(dims)) {
  OLAPIDX_CHECK(!dimensions_.empty());
  OLAPIDX_CHECK(dimensions_.size() <= 16);
  for (const HierarchicalDimension& d : dimensions_) {
    OLAPIDX_CHECK(!d.name.empty());
    OLAPIDX_CHECK(!d.levels.empty());
    uint64_t prev = ~0ULL;
    for (const HierarchyLevel& level : d.levels) {
      OLAPIDX_CHECK(!level.name.empty());
      OLAPIDX_CHECK(level.cardinality >= 1);
      // Coarsening can only shrink (or keep) the member count.
      OLAPIDX_CHECK(level.cardinality <= prev);
      prev = level.cardinality;
    }
  }
}

const std::string& HierarchicalSchema::level_name(int d, int level) const {
  OLAPIDX_DCHECK(level >= 0 && level <= all_level(d));
  if (level == all_level(d)) return kAllName;
  return dimension(d).levels[static_cast<size_t>(level)].name;
}

uint64_t HierarchicalSchema::NumViews() const {
  uint64_t total = 1;
  for (int d = 0; d < num_dimensions(); ++d) {
    total *= static_cast<uint64_t>(radix(d));
  }
  return total;
}

}  // namespace olapidx
