#include "hierarchy/hierarchical_graph.h"

namespace olapidx {

namespace {

// The subcube id holding the distinct combinations of `dims` at the
// query's selection levels (ALL elsewhere) — the |E| of the cost formula.
HViewId PrefixSubcube(const HierarchicalLattice& lattice,
                      const HSliceQuery& query,
                      const std::vector<int>& prefix_dims) {
  const HierarchicalSchema& schema = lattice.schema();
  std::vector<int> levels(static_cast<size_t>(schema.num_dimensions()));
  for (int d = 0; d < schema.num_dimensions(); ++d) {
    levels[static_cast<size_t>(d)] = schema.all_level(d);
  }
  for (int d : prefix_dims) {
    levels[static_cast<size_t>(d)] = query.role(d).level;
  }
  return lattice.IdOf(LevelVector(std::move(levels)));
}

}  // namespace

std::vector<WeightedHQuery> UniformHWorkload(
    const HierarchicalSchema& schema) {
  std::vector<WeightedHQuery> out;
  for (HSliceQuery& q : EnumerateAllHQueries(schema)) {
    out.push_back(WeightedHQuery{std::move(q), 1.0});
  }
  return out;
}

HierarchicalCubeGraph BuildHierarchicalCubeGraph(
    const HierarchicalSchema& schema, double raw_rows,
    const std::vector<WeightedHQuery>& workload,
    const HierarchicalGraphOptions& options) {
  OLAPIDX_CHECK(raw_rows >= 1.0);
  OLAPIDX_CHECK(options.raw_scan_penalty >= 1.0);
  HierarchicalLattice lattice(&schema);

  HierarchicalCubeGraph out;
  out.view_sizes = lattice.AnalyticalSizes(raw_rows);
  QueryViewGraph& g = out.graph;

  for (HViewId v = 0; v < lattice.num_views(); ++v) {
    LevelVector levels = lattice.LevelsOf(v);
    double size = out.view_sizes[v];
    uint32_t gv = g.AddView(lattice.ViewName(levels), size);
    OLAPIDX_CHECK(gv == v);
    if (options.maintenance_per_row > 0.0) {
      g.SetViewMaintenance(gv, options.maintenance_per_row * size);
    }
    std::vector<std::vector<int>> orders = lattice.FatIndexOrders(levels);
    for (const std::vector<int>& order : orders) {
      std::string name = "I_";
      for (int d : order) {
        name += schema.dimension(d).name + "." +
                schema.level_name(d, levels.level(d)) + ".";
      }
      name.pop_back();
      int32_t gi = g.AddIndex(gv, name, size);
      if (options.maintenance_per_row > 0.0) {
        g.SetIndexMaintenance(gv, gi,
                              options.maintenance_per_row * size);
      }
    }
    out.view_levels.push_back(std::move(levels));
    out.index_orders.push_back(std::move(orders));
  }

  double default_cost =
      options.default_query_cost > 0.0
          ? options.default_query_cost
          : options.raw_scan_penalty * out.view_sizes[lattice.BaseView()];

  for (const WeightedHQuery& wq : workload) {
    uint32_t q = g.AddQuery(wq.query.ToString(schema), default_cost,
                            wq.frequency);
    out.queries.push_back(wq.query);
    for (HViewId v = 0; v < lattice.num_views(); ++v) {
      const LevelVector& levels = out.view_levels[v];
      if (!wq.query.AnswerableFrom(levels, schema)) continue;
      double scan = out.view_sizes[v];
      g.AddViewEdge(q, static_cast<uint32_t>(v), scan);
      const std::vector<std::vector<int>>& orders = out.index_orders[v];
      for (size_t k = 0; k < orders.size(); ++k) {
        // Longest prefix of the key's dimension order made of this
        // query's selection dimensions.
        std::vector<int> prefix;
        for (int d : orders[k]) {
          if (wq.query.role(d).kind != HDimRole::kSelect) break;
          prefix.push_back(d);
        }
        if (prefix.empty()) continue;
        double denom =
            out.view_sizes[PrefixSubcube(lattice, wq.query, prefix)];
        double cost = scan / denom;
        if (cost < scan) {
          g.AddIndexEdge(q, static_cast<uint32_t>(v),
                         static_cast<int32_t>(k), cost);
        }
      }
    }
  }
  g.Finalize();
  return out;
}

}  // namespace olapidx
