#include "hierarchy/hierarchical_graph.h"

#include <algorithm>
#include <bit>
#include <memory>
#include <numeric>
#include <set>
#include <string>
#include <utility>

#include "common/rng.h"
#include "core/lattice_graph_builder.h"
#include "core/pruning_policy.h"

namespace olapidx {

namespace {

// A(m, r) = m · (m-1) · … · (m-r+1): arrangements of r of m elements.
int64_t Falling(int m, int r) {
  int64_t a = 1;
  for (int i = 0; i < r; ++i) a *= m - i;
  return a;
}

// Indexes per view with m active dimensions, by family.
int64_t NumIndexesForActive(int m, bool fat_indexes_only) {
  if (m == 0) return 0;
  if (fat_indexes_only) return Falling(m, m);
  int64_t total = 0;
  for (int r = 1; r <= m; ++r) total += Falling(m, r);
  return total;
}

// Decodes the k-th key order of a view with active dimensions `active`
// (ascending), under the canonical family order — lexicographic
// permutations for fat indexes, length-then-lexicographic arrangements for
// the ablation (FatIndexOrders / AllIndexOrders rank k) — via the factorial
// number system.
std::vector<int> DecodeOrder(const std::vector<int>& active, int64_t k,
                             bool fat_indexes_only) {
  const int m = static_cast<int>(active.size());
  int r = m;
  if (!fat_indexes_only) {
    int64_t offset = 0;
    for (r = 1; r <= m; ++r) {
      const int64_t block = Falling(m, r);
      if (k < offset + block) break;
      offset += block;
    }
    OLAPIDX_CHECK(r <= m);
    k -= offset;
  }
  std::vector<int> avail = active;
  std::vector<int> order;
  order.reserve(static_cast<size_t>(r));
  for (int d = 0; d < r; ++d) {
    const int64_t block = Falling(m - d - 1, r - d - 1);
    const auto i = static_cast<size_t>(k / block);
    k %= block;
    OLAPIDX_CHECK(i < avail.size());
    order.push_back(avail[i]);
    avail.erase(avail.begin() + static_cast<ptrdiff_t>(i));
  }
  return order;
}

// Inverse of DecodeOrder: the family rank of `order`, or -1 when it is not
// a valid key order over `active` (wrong length for the family, a repeated
// dimension, or a dimension outside the active set).
int64_t OrderRank(const std::vector<int>& active,
                  const std::vector<int>& order, bool fat_indexes_only) {
  const int m = static_cast<int>(active.size());
  const int r = static_cast<int>(order.size());
  if (r == 0 || r > m) return -1;
  if (fat_indexes_only && r != m) return -1;
  int64_t rank = 0;
  if (!fat_indexes_only) {
    for (int len = 1; len < r; ++len) rank += Falling(m, len);
  }
  std::vector<int> avail = active;
  for (int d = 0; d < r; ++d) {
    const auto it =
        std::find(avail.begin(), avail.end(), order[static_cast<size_t>(d)]);
    if (it == avail.end()) return -1;
    rank += (it - avail.begin()) * Falling(m - d - 1, r - d - 1);
    avail.erase(it);
  }
  return rank;
}

// The subcube id holding the distinct combinations of `dims` at the
// query's selection levels (ALL elsewhere) — the |E| of the cost formula.
HViewId PrefixSubcube(const HierarchicalLattice& lattice,
                      const HSliceQuery& query,
                      const std::vector<int>& prefix_dims) {
  const HierarchicalSchema& schema = lattice.schema();
  std::vector<int> levels(static_cast<size_t>(schema.num_dimensions()));
  for (int d = 0; d < schema.num_dimensions(); ++d) {
    levels[static_cast<size_t>(d)] = schema.all_level(d);
  }
  for (int d : prefix_dims) {
    levels[static_cast<size_t>(d)] = query.role(d).level;
  }
  return lattice.IdOf(LevelVector(std::move(levels)));
}

std::vector<int> AllLevelsOf(const HierarchicalSchema& schema) {
  std::vector<int> all(static_cast<size_t>(schema.num_dimensions()));
  for (int d = 0; d < schema.num_dimensions(); ++d) {
    all[static_cast<size_t>(d)] = schema.all_level(d);
  }
  return all;
}

// Everything the lazy index namer needs, captured by value so the closure
// outlives the build (QueryViewGraph consults it on demand).
struct NamerState {
  std::vector<std::string> dim_names;
  // Per dimension, level names including "ALL" at index all_level.
  std::vector<std::vector<std::string>> level_names;
  std::vector<uint64_t> strides;
  std::vector<int> radices;
  std::vector<int> all_levels;
  bool fat_indexes_only = true;
  // Sparse builds only: graph view id -> lattice id (empty = identity) and
  // per-view candidate key orders (an empty per-view family = canonical
  // fat enumeration, decoded on demand).
  std::vector<uint64_t> view_ids;
  std::vector<std::vector<std::vector<int>>> orders;
};

std::function<std::string(uint32_t, int32_t)> MakeIndexNamer(
    const HierarchicalSchema& schema, const HierarchicalLattice& lattice,
    bool fat_indexes_only, std::vector<uint64_t> view_ids = {},
    std::vector<std::vector<std::vector<int>>> orders = {}) {
  auto state = std::make_shared<NamerState>();
  const int n = schema.num_dimensions();
  state->fat_indexes_only = fat_indexes_only;
  state->all_levels = AllLevelsOf(schema);
  state->view_ids = std::move(view_ids);
  state->orders = std::move(orders);
  for (int d = 0; d < n; ++d) {
    state->dim_names.push_back(schema.dimension(d).name);
    std::vector<std::string> names;
    for (int level = 0; level <= schema.all_level(d); ++level) {
      names.push_back(schema.level_name(d, level));
    }
    state->level_names.push_back(std::move(names));
    state->strides.push_back(lattice.stride(d));
    state->radices.push_back(schema.radix(d));
  }
  return [state](uint32_t v, int32_t k) {
    const uint64_t id = state->view_ids.empty()
                            ? static_cast<uint64_t>(v)
                            : state->view_ids[v];
    const int nd = static_cast<int>(state->dim_names.size());
    std::vector<int> levels(static_cast<size_t>(nd));
    std::vector<int> active;
    for (int d = 0; d < nd; ++d) {
      const int level = static_cast<int>(
          (id / state->strides[static_cast<size_t>(d)]) %
          static_cast<uint64_t>(state->radices[static_cast<size_t>(d)]));
      levels[static_cast<size_t>(d)] = level;
      if (level != state->all_levels[static_cast<size_t>(d)]) {
        active.push_back(d);
      }
    }
    std::vector<int> order =
        !state->orders.empty() && !state->orders[v].empty()
            ? state->orders[v][static_cast<size_t>(k)]
            : DecodeOrder(active, k, state->fat_indexes_only);
    std::string name = "I_";
    for (int d : order) {
      name += state->dim_names[static_cast<size_t>(d)] + "." +
              state->level_names[static_cast<size_t>(d)]
                                [static_cast<size_t>(
                                     levels[static_cast<size_t>(d)])] +
              ".";
    }
    name.pop_back();
    return name;
  };
}

// The hierarchical LatticeProvider (core/lattice_graph_builder.h): views
// are mixed-radix level-vector ids, a query's answering views are the
// odometer product of [0, required_level_d] per dimension, and index costs
// come from WalkPrefixClasses over the view's active dimensions mapped to
// local bits — the per-class cost depends only on the prefix's dimension
// *set* (key order within the prefix never changes |E|), so one division
// covers a whole contiguous rank range of key orders.
struct HierarchicalLatticeProvider {
  const HierarchicalSchema* schema;
  const HierarchicalLattice* lattice;
  const std::vector<WeightedHQuery>* workload;
  const HierarchicalGraphOptions* options;
  HierarchicalCubeGraph* out;
  int n = 0;
  uint32_t all_all_id = 0;  // id of the all-ALL apex = num_views - 1

  struct Ctx {
    std::vector<int> required;    // per dim: coarsest answering level
    std::vector<int> lv;          // odometer digits = current view's levels
    std::vector<int64_t> delta;   // select dims: (sel_level − ALL)·stride
    std::vector<char> is_select;  // per dim
    std::vector<int64_t> local_delta;  // per active local bit, select only
  };

  uint32_t num_views() const {
    return static_cast<uint32_t>(lattice->num_views());
  }
  uint32_t BaseView() const {
    return static_cast<uint32_t>(lattice->BaseView());
  }
  double ViewSizeOf(uint32_t v) const { return out->view_sizes[v]; }

  void InitGraph(QueryViewGraph& g) const {
    g.SetIndexNamer(
        MakeIndexNamer(*schema, *lattice, options->fat_indexes_only));
  }

  void AddStructures(QueryViewGraph& g, uint32_t v, double size,
                     double maintenance) const {
    LevelVector levels = lattice->LevelsOf(v);
    uint32_t gv = g.AddView(lattice->ViewName(levels), size);
    OLAPIDX_CHECK(gv == v);
    if (maintenance > 0.0) g.SetViewMaintenance(gv, maintenance);
    const int m =
        static_cast<int>(lattice->ActiveDimensions(levels).size());
    const int64_t count =
        NumIndexesForActive(m, options->fat_indexes_only);
    g.AddIndexesNamed(gv, static_cast<int32_t>(count), size, maintenance);
    out->view_levels.push_back(std::move(levels));
  }

  size_t num_queries() const { return workload->size(); }

  void AddQuery(QueryViewGraph& g, size_t qi, double default_cost) const {
    const WeightedHQuery& wq = (*workload)[qi];
    g.AddQuery(wq.query.ToString(*schema), default_cost, wq.frequency);
    out->queries.push_back(wq.query);
  }

  Ctx MakeQueryContext() const {
    Ctx ctx;
    ctx.required.resize(static_cast<size_t>(n));
    ctx.lv.resize(static_cast<size_t>(n));
    ctx.delta.resize(static_cast<size_t>(n));
    ctx.is_select.resize(static_cast<size_t>(n));
    ctx.local_delta.reserve(static_cast<size_t>(n));
    return ctx;
  }

  void BeginQuery(Ctx& ctx, size_t qi) const {
    const HSliceQuery& q = (*workload)[qi].query;
    for (int d = 0; d < n; ++d) {
      const HDimRole& role = q.role(d);
      const auto sd = static_cast<size_t>(d);
      ctx.required[sd] =
          role.kind == HDimRole::kAbsent ? schema->all_level(d) : role.level;
      ctx.is_select[sd] = role.kind == HDimRole::kSelect;
      ctx.delta[sd] =
          ctx.is_select[sd]
              ? (static_cast<int64_t>(role.level) - schema->all_level(d)) *
                    static_cast<int64_t>(lattice->stride(d))
              : 0;
    }
  }

  template <typename Visit>
  void ForEachAnsweringView(Ctx& ctx, Visit&& visit) const {
    // The views that can answer the query are exactly those at least as
    // fine as its required levels: the product of [0, required_d] per
    // dimension, walked as a mixed-radix odometer (dimension 0 fastest =
    // ascending view ids). ctx.lv holds the current view's level digits
    // for the duration of each visit, so IndexColumnClass /
    // ForEachIndexCostClass read them without re-decoding the id.
    std::fill(ctx.lv.begin(), ctx.lv.end(), 0);
    uint32_t v = 0;  // the finest view has id 0
    for (;;) {
      visit(v);
      int d = 0;
      while (d < n && ctx.lv[static_cast<size_t>(d)] ==
                          ctx.required[static_cast<size_t>(d)]) {
        v -= static_cast<uint32_t>(
            static_cast<uint64_t>(ctx.lv[static_cast<size_t>(d)]) *
            lattice->stride(d));
        ctx.lv[static_cast<size_t>(d)] = 0;
        ++d;
      }
      if (d == n) break;
      ++ctx.lv[static_cast<size_t>(d)];
      v += static_cast<uint32_t>(lattice->stride(d));
    }
  }

  uint32_t IndexColumnClass(const Ctx& ctx, uint32_t /*v*/) const {
    // A query's index costs from a view depend only on the restriction of
    // the view's active dimensions to the query's selection (each |E|
    // denominator is the subcube of a selection-dimension prefix at the
    // query's select levels), so queries agreeing on that restricted
    // subcube share one dense column. Its id, shifted to be non-zero, is
    // the column class; ids stay < 2^20 by the kMaxHierarchicalViews
    // ceiling. 0 iff the view has no active dimensions (the apex — the
    // only view without indexes).
    int64_t id = all_all_id;
    bool any_active = false;
    for (int d = 0; d < n; ++d) {
      const auto sd = static_cast<size_t>(d);
      if (ctx.lv[sd] == schema->all_level(d)) continue;
      any_active = true;
      if (ctx.is_select[sd]) id += ctx.delta[sd];
    }
    if (!any_active) return 0;
    return static_cast<uint32_t>(id) + 1;
  }

  template <typename Emit>
  void ForEachIndexCostClass(Ctx& ctx, uint32_t /*v*/,
                             const double* view_size, Emit&& emit) const {
    // Map the view's active dimensions to local bits 0..m-1 (ascending
    // dimension order — the rank order of FatIndexOrders/AllIndexOrders)
    // and walk the arrangement tree once per prefix-equivalence class.
    ctx.local_delta.clear();
    uint32_t sel_local = 0;
    for (int d = 0; d < n; ++d) {
      const auto sd = static_cast<size_t>(d);
      if (ctx.lv[sd] == schema->all_level(d)) continue;
      if (ctx.is_select[sd]) {
        sel_local |= 1u << ctx.local_delta.size();
      }
      ctx.local_delta.push_back(ctx.delta[sd]);
    }
    const int m = static_cast<int>(ctx.local_delta.size());
    const uint32_t full = (1u << m) - 1;
    auto cost_emit = [&](int64_t rb, int64_t re, uint32_t prefix) {
      // |E|: the subcube of the prefix dimensions at the query's select
      // levels, ALL elsewhere = apex id plus the precomputed per-dimension
      // stride deltas (prefix bits are always selection bits).
      int64_t denom_id = all_all_id;
      for (uint32_t rest = prefix; rest != 0; rest &= rest - 1) {
        denom_id += ctx.local_delta[static_cast<size_t>(
            std::countr_zero(rest))];
      }
      emit(rb, re, view_size[denom_id]);
    };
    if (options->fat_indexes_only) {
      WalkPrefixClasses(full, m, m, sel_local, 0, cost_emit);
    } else {
      int64_t offset = 0;
      int64_t arrangements = 1;
      for (int r = 1; r <= m; ++r) {
        arrangements *= m - (r - 1);  // A(m, r)
        WalkPrefixClasses(full, m, r, sel_local, offset, cost_emit);
        offset += arrangements;
      }
    }
  }
};

// Shared external-input validation of a hierarchical workload (dense and
// sparse builders): role vectors must match the schema and mentioned
// dimensions must sit at proper levels.
Status ValidateHierarchicalWorkload(
    const HierarchicalSchema& schema,
    const std::vector<WeightedHQuery>& workload) {
  const int n = schema.num_dimensions();
  for (size_t qi = 0; qi < workload.size(); ++qi) {
    const WeightedHQuery& wq = workload[qi];
    auto fail = [&](const std::string& message) {
      return Status::InvalidArgument("workload query " +
                                     std::to_string(qi + 1) + ": " + message);
    };
    if (static_cast<int>(wq.query.roles().size()) != n) {
      return fail("has " + std::to_string(wq.query.roles().size()) +
                  " dimension roles, schema has " + std::to_string(n) +
                  " dimensions");
    }
    if (wq.frequency < 0.0) {
      return fail("negative frequency " + std::to_string(wq.frequency));
    }
    for (int d = 0; d < n; ++d) {
      const HDimRole& role = wq.query.role(d);
      if (role.kind == HDimRole::kAbsent) continue;
      if (role.level < 0 || role.level >= schema.num_levels(d)) {
        return fail("dimension '" + schema.dimension(d).name +
                    "' mentioned at level " + std::to_string(role.level) +
                    ", outside its proper levels [0, " +
                    std::to_string(schema.num_levels(d) - 1) + "]");
      }
    }
  }
  return Status::Ok();
}

}  // namespace

std::vector<int> HierarchicalCubeGraph::ActiveDimensionsOf(
    uint32_t v) const {
  const LevelVector& levels = view_levels[v];
  std::vector<int> active;
  for (int d = 0; d < levels.size(); ++d) {
    if (levels.level(d) != all_levels[static_cast<size_t>(d)]) {
      active.push_back(d);
    }
  }
  return active;
}

std::vector<int> HierarchicalCubeGraph::IndexOrderOf(uint32_t v,
                                                     int32_t k) const {
  // A non-empty per-view family is authoritative (the reference builder's
  // canonical enumeration, or a sparse build's candidate family). Views
  // with an empty per-view vector — every view of a fast dense build, and
  // the fat views of a sparse one — decode the canonical family on demand.
  if (!index_orders.empty() && !index_orders[v].empty()) {
    return index_orders[v][static_cast<size_t>(k)];
  }
  return DecodeOrder(ActiveDimensionsOf(v), k, fat_indexes_only);
}

int32_t HierarchicalCubeGraph::IndexPositionOf(
    uint32_t v, const std::vector<int>& order) const {
  // Candidate families are sparse subsets of the canonical enumeration, so
  // their ranks are positional, not combinatorial — search the stored
  // family. (Reference builds store the canonical family, for which the
  // search agrees with OrderRank.)
  if (!index_orders.empty() && !index_orders[v].empty()) {
    const std::vector<std::vector<int>>& family = index_orders[v];
    for (size_t k = 0; k < family.size(); ++k) {
      if (family[k] == order) return static_cast<int32_t>(k);
    }
    return -1;
  }
  const int64_t rank =
      OrderRank(ActiveDimensionsOf(v), order, fat_indexes_only);
  return rank < 0 ? -1 : static_cast<int32_t>(rank);
}

std::vector<WeightedHQuery> UniformHWorkload(
    const HierarchicalSchema& schema) {
  std::vector<WeightedHQuery> out;
  for (HSliceQuery& q : EnumerateAllHQueries(schema)) {
    out.push_back(WeightedHQuery{std::move(q), 1.0});
  }
  return out;
}

StatusOr<HierarchicalCubeGraph> TryBuildHierarchicalCubeGraph(
    const HierarchicalSchema& schema, double raw_rows,
    const std::vector<WeightedHQuery>& workload,
    const HierarchicalGraphOptions& options) {
  if (!(raw_rows >= 1.0)) {
    return Status::InvalidArgument("raw_rows must be >= 1 (got " +
                                   std::to_string(raw_rows) + ")");
  }
  if (!(options.raw_scan_penalty >= 1.0)) {
    return Status::InvalidArgument("raw_scan_penalty must be >= 1 (got " +
                                   std::to_string(options.raw_scan_penalty) +
                                   ")");
  }
  if (options.maintenance_per_row < 0.0) {
    return Status::InvalidArgument(
        "maintenance_per_row must be non-negative (got " +
        std::to_string(options.maintenance_per_row) + ")");
  }
  if (options.default_query_cost < 0.0) {
    return Status::InvalidArgument(
        "default_query_cost must be non-negative (got " +
        std::to_string(options.default_query_cost) + ")");
  }
  const int n = schema.num_dimensions();
  if (options.fat_indexes_only && n > 8) {
    return Status::InvalidArgument(
        "fat-index hierarchical graphs support at most 8 dimensions (got "
        "n = " +
        std::to_string(n) +
        "; the base view's fat indexes are permutations of all n "
        "dimensions)");
  }
  if (!options.fat_indexes_only && n > 6) {
    return Status::InvalidArgument(
        "all-ordered-subset (fat-index-pruning ablation) hierarchical "
        "graphs support at most 6 dimensions (got n = " +
        std::to_string(n) + ")");
  }
  const uint64_t num_views = schema.NumViews();
  if (num_views > kMaxHierarchicalViews) {
    return Status::InvalidArgument(
        "hierarchical lattice has " + std::to_string(num_views) +
        " views, over the ceiling of " +
        std::to_string(kMaxHierarchicalViews) +
        "; coarsen or drop hierarchy levels");
  }
  // Total structure census, combinatorially: the views whose active set is
  // exactly the dimension subset S number Π_{d∈S} levels_d, and each
  // carries 1 view + family(|S|) indexes.
  uint64_t total_structures = 0;
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    uint64_t views_with = 1;
    int m = 0;
    for (int d = 0; d < n; ++d) {
      if ((mask >> d) & 1u) {
        views_with *= static_cast<uint64_t>(schema.num_levels(d));
        ++m;
      }
    }
    total_structures +=
        views_with *
        (1 + static_cast<uint64_t>(
                 NumIndexesForActive(m, options.fat_indexes_only)));
    if (total_structures > kMaxHierarchicalStructures) {
      return Status::InvalidArgument(
          "hierarchical lattice carries over " +
          std::to_string(kMaxHierarchicalStructures) +
          " structures (views + indexes); coarsen or drop hierarchy "
          "levels");
    }
  }
  if (Status s = ValidateHierarchicalWorkload(schema, workload); !s.ok()) {
    return s;
  }

  HierarchicalLattice lattice(&schema);
  HierarchicalCubeGraph out;
  out.view_sizes = lattice.AnalyticalSizes(raw_rows);
  out.view_levels.reserve(static_cast<size_t>(num_views));
  out.all_levels = AllLevelsOf(schema);
  out.fat_indexes_only = options.fat_indexes_only;

  HierarchicalLatticeProvider provider{
      &schema,
      &lattice,
      &workload,
      &options,
      &out,
      n,
      static_cast<uint32_t>(num_views - 1)};
  LatticeGraphOptions build;
  build.default_query_cost = options.default_query_cost;
  build.raw_scan_penalty = options.raw_scan_penalty;
  build.maintenance_per_row = options.maintenance_per_row;
  build.num_threads = options.num_threads;
  build.cost_model = options.cost_model.get();
  BuildLatticeGraph(provider, build, out.graph);
  return out;
}

HierarchicalCubeGraph BuildHierarchicalCubeGraph(
    const HierarchicalSchema& schema, double raw_rows,
    const std::vector<WeightedHQuery>& workload,
    const HierarchicalGraphOptions& options) {
  StatusOr<HierarchicalCubeGraph> built =
      TryBuildHierarchicalCubeGraph(schema, raw_rows, workload, options);
  if (!built.ok()) {
    internal::CheckFailed(__FILE__, __LINE__,
                          built.status().ToString().c_str());
  }
  return *std::move(built);
}

HierarchicalCubeGraph BuildHierarchicalCubeGraphReference(
    const HierarchicalSchema& schema, double raw_rows,
    const std::vector<WeightedHQuery>& workload,
    const HierarchicalGraphOptions& options) {
  OLAPIDX_CHECK(raw_rows >= 1.0);
  OLAPIDX_CHECK(options.raw_scan_penalty >= 1.0);
  HierarchicalLattice lattice(&schema);

  HierarchicalCubeGraph out;
  out.view_sizes = lattice.AnalyticalSizes(raw_rows);
  out.all_levels = AllLevelsOf(schema);
  out.fat_indexes_only = options.fat_indexes_only;
  QueryViewGraph& g = out.graph;

  for (HViewId v = 0; v < lattice.num_views(); ++v) {
    LevelVector levels = lattice.LevelsOf(v);
    double size = out.view_sizes[v];
    uint32_t gv = g.AddView(lattice.ViewName(levels), size);
    OLAPIDX_CHECK(gv == v);
    if (options.maintenance_per_row > 0.0) {
      g.SetViewMaintenance(gv, options.maintenance_per_row * size);
    }
    std::vector<std::vector<int>> orders =
        options.fat_indexes_only ? lattice.FatIndexOrders(levels)
                                 : lattice.AllIndexOrders(levels);
    for (const std::vector<int>& order : orders) {
      std::string name = "I_";
      for (int d : order) {
        name += schema.dimension(d).name + "." +
                schema.level_name(d, levels.level(d)) + ".";
      }
      name.pop_back();
      int32_t gi = g.AddIndex(gv, name, size);
      if (options.maintenance_per_row > 0.0) {
        g.SetIndexMaintenance(gv, gi,
                              options.maintenance_per_row * size);
      }
    }
    out.view_levels.push_back(std::move(levels));
    out.index_orders.push_back(std::move(orders));
  }

  double default_cost =
      options.default_query_cost > 0.0
          ? options.default_query_cost
          : options.raw_scan_penalty * out.view_sizes[lattice.BaseView()];

  for (const WeightedHQuery& wq : workload) {
    uint32_t q = g.AddQuery(wq.query.ToString(schema), default_cost,
                            wq.frequency);
    out.queries.push_back(wq.query);
    for (HViewId v = 0; v < lattice.num_views(); ++v) {
      const LevelVector& levels = out.view_levels[v];
      if (!wq.query.AnswerableFrom(levels, schema)) continue;
      double scan = out.view_sizes[v];
      g.AddViewEdge(q, static_cast<uint32_t>(v), scan);
      const std::vector<std::vector<int>>& orders = out.index_orders[v];
      for (size_t k = 0; k < orders.size(); ++k) {
        // Longest prefix of the key's dimension order made of this
        // query's selection dimensions.
        std::vector<int> prefix;
        for (int d : orders[k]) {
          if (wq.query.role(d).kind != HDimRole::kSelect) break;
          prefix.push_back(d);
        }
        if (prefix.empty()) continue;
        double denom =
            out.view_sizes[PrefixSubcube(lattice, wq.query, prefix)];
        double cost = scan / denom;
        // Same pruning rule as the generic builder
        // (core/lattice_graph_builder.h): emit iff cost < scan. The
        // prefix.empty() skip above is the rule's degenerate case — the
        // all-ALL denominator is exactly 1, so an empty prefix costs
        // exactly a scan.
        if (cost < scan) {
          g.AddIndexEdge(q, static_cast<uint32_t>(v),
                         static_cast<int32_t>(k), cost);
        }
      }
    }
  }
  g.Finalize();
  return out;
}

std::vector<WeightedHQuery> SampledZipfHWorkload(
    const HierarchicalSchema& schema, size_t num_queries, double skew,
    uint64_t seed) {
  const int n = schema.num_dimensions();
  // Population: each dimension independently absent, grouped at one of its
  // levels, or selected at one of its levels. Counted in doubles — the
  // product overflows uint64 long before rejection sampling struggles.
  double total = 1.0;
  for (int d = 0; d < n; ++d) {
    total *= 1.0 + 2.0 * schema.num_levels(d);
  }
  OLAPIDX_CHECK(num_queries > 0 &&
                static_cast<double>(num_queries) <= total);

  // Rejection-sample distinct queries, mirroring SampledZipfSliceQueries:
  // each draw picks an independent role per dimension, uniform over the
  // population without enumerating it.
  Pcg32 rng(seed);
  std::vector<HSliceQuery> sample;
  sample.reserve(num_queries);
  std::set<std::vector<int>> seen;
  std::vector<int> key(static_cast<size_t>(n));
  while (sample.size() < num_queries) {
    std::vector<HDimRole> roles(static_cast<size_t>(n));
    for (int d = 0; d < n; ++d) {
      const int levels = schema.num_levels(d);
      const int c = static_cast<int>(
          rng.NextBounded(static_cast<uint32_t>(1 + 2 * levels)));
      key[static_cast<size_t>(d)] = c;
      HDimRole& role = roles[static_cast<size_t>(d)];
      if (c == 0) {
        role.kind = HDimRole::kAbsent;
      } else if (c <= levels) {
        role.kind = HDimRole::kGroupBy;
        role.level = c - 1;
      } else {
        role.kind = HDimRole::kSelect;
        role.level = c - levels - 1;
      }
    }
    if (!seen.insert(key).second) continue;
    sample.emplace_back(HSliceQuery(std::move(roles)));
  }

  // Draw rank = heat rank: the k-th distinct query sampled gets the k-th
  // Zipf mass.
  ZipfSampler zipf(static_cast<uint32_t>(num_queries), skew);
  std::vector<WeightedHQuery> out;
  out.reserve(num_queries);
  for (size_t k = 0; k < num_queries; ++k) {
    out.push_back(WeightedHQuery{
        std::move(sample[k]),
        zipf.Probability(static_cast<uint32_t>(k))});
  }
  return out;
}

namespace {

// The pruned-lattice hierarchical LatticeProvider: graph view ids are
// dense in the retained set (ascending lattice-id order), answering views
// resolve through the lattice-id → dense-id inverse, and views with more
// than max_fat_dim active dimensions carry workload-derived candidate key
// orders. Cost arithmetic mirrors HierarchicalLatticeProvider division for
// division — every denominator is view_sizes[subcube id] from the same
// AnalyticalSizes array — which is what makes the unpruned sparse build
// bit-identical to the dense one.
struct SparseHierarchicalLatticeProvider {
  const HierarchicalSchema* schema;
  const HierarchicalLattice* lattice;
  const std::vector<WeightedHQuery>* workload;  // the *retained* workload
  const SparseHierarchicalGraphOptions* options;
  const std::vector<uint64_t>* view_ids;  // dense id -> lattice id
  const std::vector<int32_t>* id_of;      // lattice id -> dense id or < 0
  const std::vector<double>* sizes;       // full-lattice AnalyticalSizes
  // Dense id -> candidate key orders; empty for fat views (canonical
  // family, enumerated on the fly exactly like the dense provider).
  const std::vector<std::vector<std::vector<int>>>* orders;
  const std::vector<int>* levels_flat;  // dense id * n + d -> level
  HierarchicalCubeGraph* out;
  int n = 0;
  uint64_t all_all_id = 0;  // lattice apex id = lattice num_views - 1
  uint32_t base_id = 0;     // dense id of the lattice base view

  struct Ctx {
    std::vector<int> required;    // per dim: coarsest answering level
    std::vector<int> lv;          // current view's level digits
    std::vector<int64_t> delta;   // select dims: (sel_level − ALL)·stride
    std::vector<char> is_select;  // per dim
    std::vector<int64_t> local_delta;  // per active local bit, select only
    uint64_t cone_size = 1;       // Π (required_d + 1)
  };

  uint32_t num_views() const {
    return static_cast<uint32_t>(view_ids->size());
  }
  uint32_t BaseView() const { return base_id; }
  double ViewSizeOf(uint32_t v) const { return (*sizes)[(*view_ids)[v]]; }

  void InitGraph(QueryViewGraph& g) const {
    g.SetIndexNamer(
        MakeIndexNamer(*schema, *lattice, true, *view_ids, *orders));
    if (options->compress_cost_columns) g.SetCompressedCostColumns();
  }

  void AddStructures(QueryViewGraph& g, uint32_t v, double size,
                     double maintenance) const {
    LevelVector levels = lattice->LevelsOf((*view_ids)[v]);
    uint32_t gv = g.AddView(lattice->ViewName(levels), size);
    OLAPIDX_CHECK(gv == v);
    if (maintenance > 0.0) g.SetViewMaintenance(gv, maintenance);
    const int m =
        static_cast<int>(lattice->ActiveDimensions(levels).size());
    const int64_t count =
        m <= options->max_fat_dim
            ? NumIndexesForActive(m, /*fat_indexes_only=*/true)
            : static_cast<int64_t>((*orders)[v].size());
    g.AddIndexesNamed(gv, static_cast<int32_t>(count), size, maintenance);
    out->view_levels.push_back(std::move(levels));
  }

  size_t num_queries() const { return workload->size(); }

  void AddQuery(QueryViewGraph& g, size_t qi, double default_cost) const {
    const WeightedHQuery& wq = (*workload)[qi];
    g.AddQuery(wq.query.ToString(*schema), default_cost, wq.frequency);
    out->queries.push_back(wq.query);
  }

  Ctx MakeQueryContext() const {
    Ctx ctx;
    ctx.required.resize(static_cast<size_t>(n));
    ctx.lv.resize(static_cast<size_t>(n));
    ctx.delta.resize(static_cast<size_t>(n));
    ctx.is_select.resize(static_cast<size_t>(n));
    ctx.local_delta.reserve(static_cast<size_t>(n));
    return ctx;
  }

  void BeginQuery(Ctx& ctx, size_t qi) const {
    const HSliceQuery& q = (*workload)[qi].query;
    ctx.cone_size = 1;
    for (int d = 0; d < n; ++d) {
      const HDimRole& role = q.role(d);
      const auto sd = static_cast<size_t>(d);
      ctx.required[sd] =
          role.kind == HDimRole::kAbsent ? schema->all_level(d) : role.level;
      ctx.is_select[sd] = role.kind == HDimRole::kSelect;
      ctx.delta[sd] =
          ctx.is_select[sd]
              ? (static_cast<int64_t>(role.level) - schema->all_level(d)) *
                    static_cast<int64_t>(lattice->stride(d))
              : 0;
      ctx.cone_size *= static_cast<uint64_t>(ctx.required[sd]) + 1;
    }
  }

  template <typename Visit>
  void ForEachAnsweringView(Ctx& ctx, Visit&& visit) const {
    // Both branches emit ascending dense ids (view_ids is sorted) and
    // leave ctx.lv holding the visited view's level digits; pick the
    // cheaper enumeration. Unpruned lattices always take the odometer
    // (the cone is a subset of the lattice), reproducing the dense
    // provider's walk exactly.
    if (ctx.cone_size <= view_ids->size()) {
      std::fill(ctx.lv.begin(), ctx.lv.end(), 0);
      uint64_t v = 0;
      for (;;) {
        const int32_t dense = (*id_of)[static_cast<size_t>(v)];
        if (dense >= 0) visit(static_cast<uint32_t>(dense));
        int d = 0;
        while (d < n && ctx.lv[static_cast<size_t>(d)] ==
                            ctx.required[static_cast<size_t>(d)]) {
          v -= static_cast<uint64_t>(ctx.lv[static_cast<size_t>(d)]) *
               lattice->stride(d);
          ctx.lv[static_cast<size_t>(d)] = 0;
          ++d;
        }
        if (d == n) break;
        ++ctx.lv[static_cast<size_t>(d)];
        v += lattice->stride(d);
      }
      return;
    }
    for (uint32_t dense = 0; dense < view_ids->size(); ++dense) {
      const int* lv =
          levels_flat->data() + size_t{dense} * static_cast<size_t>(n);
      bool answers = true;
      for (int d = 0; d < n; ++d) {
        if (lv[d] > ctx.required[static_cast<size_t>(d)]) {
          answers = false;
          break;
        }
      }
      if (!answers) continue;
      std::copy(lv, lv + n, ctx.lv.begin());
      visit(dense);
    }
  }

  uint32_t IndexColumnClass(const Ctx& ctx, uint32_t v) const {
    // Same class as the dense provider — the restricted-selection subcube
    // id, shifted non-zero (its mixed-radix encoding pins both the
    // selected active dimensions and their levels, so classmates share
    // every denominator regardless of key family). 0 for the apex and for
    // wide views whose candidate family is empty.
    int64_t id = static_cast<int64_t>(all_all_id);
    int m = 0;
    for (int d = 0; d < n; ++d) {
      const auto sd = static_cast<size_t>(d);
      if (ctx.lv[sd] == schema->all_level(d)) continue;
      ++m;
      if (ctx.is_select[sd]) id += ctx.delta[sd];
    }
    if (m == 0) return 0;
    if (m > options->max_fat_dim && (*orders)[v].empty()) return 0;
    return static_cast<uint32_t>(id) + 1;
  }

  template <typename Emit>
  void ForEachIndexCostClass(Ctx& ctx, uint32_t v,
                             const double* /*view_size*/,
                             Emit&& emit) const {
    const double* sz = sizes->data();
    ctx.local_delta.clear();
    uint32_t sel_local = 0;
    for (int d = 0; d < n; ++d) {
      const auto sd = static_cast<size_t>(d);
      if (ctx.lv[sd] == schema->all_level(d)) continue;
      if (ctx.is_select[sd]) {
        sel_local |= 1u << ctx.local_delta.size();
      }
      ctx.local_delta.push_back(ctx.delta[sd]);
    }
    const int m = static_cast<int>(ctx.local_delta.size());
    if (m <= options->max_fat_dim) {
      const uint32_t full = (1u << m) - 1;
      WalkPrefixClasses(full, m, m, sel_local, 0,
                        [&](int64_t rb, int64_t re, uint32_t prefix) {
                          int64_t denom_id =
                              static_cast<int64_t>(all_all_id);
                          for (uint32_t rest = prefix; rest != 0;
                               rest &= rest - 1) {
                            denom_id += ctx.local_delta[static_cast<size_t>(
                                std::countr_zero(rest))];
                          }
                          emit(rb, re, sz[denom_id]);
                        });
      return;
    }
    // Candidate family: each key serves its query at the longest leading
    // run of selection dimensions; denominators are the same per-dimension
    // stride deltas as the fat path.
    const std::vector<std::vector<int>>& family = (*orders)[v];
    for (size_t k = 0; k < family.size(); ++k) {
      int64_t denom_id = static_cast<int64_t>(all_all_id);
      for (int d : family[k]) {
        if (!ctx.is_select[static_cast<size_t>(d)]) break;
        denom_id += ctx.delta[static_cast<size_t>(d)];
      }
      emit(static_cast<int64_t>(k), static_cast<int64_t>(k) + 1,
           sz[denom_id]);
    }
  }
};

}  // namespace

StatusOr<SparseHierarchicalCubeGraph> TryBuildSparseHierarchicalCubeGraph(
    const HierarchicalSchema& schema, double raw_rows,
    const std::vector<WeightedHQuery>& workload,
    const SparseHierarchicalGraphOptions& options) {
  if (!(raw_rows >= 1.0)) {
    return Status::InvalidArgument("raw_rows must be >= 1 (got " +
                                   std::to_string(raw_rows) + ")");
  }
  if (!(options.raw_scan_penalty >= 1.0)) {
    return Status::InvalidArgument("raw_scan_penalty must be >= 1 (got " +
                                   std::to_string(options.raw_scan_penalty) +
                                   ")");
  }
  if (options.maintenance_per_row < 0.0) {
    return Status::InvalidArgument(
        "maintenance_per_row must be non-negative (got " +
        std::to_string(options.maintenance_per_row) + ")");
  }
  if (options.default_query_cost < 0.0) {
    return Status::InvalidArgument(
        "default_query_cost must be non-negative (got " +
        std::to_string(options.default_query_cost) + ")");
  }
  if (options.max_fat_dim < 0 || options.max_fat_dim > 8) {
    return Status::InvalidArgument(
        "max_fat_dim must be in [0, 8] (got " +
        std::to_string(options.max_fat_dim) + ")");
  }
  if (!(options.query_mass > 0.0) || options.query_mass > 1.0) {
    return Status::InvalidArgument("query_mass must be in (0, 1]");
  }
  const int n = schema.num_dimensions();
  const uint64_t num_views = schema.NumViews();
  // The full lattice must still fit the view-id ceiling: index-edge column
  // classes are keyed by lattice subcube ids even when most views are
  // pruned away. The *structure* ceiling, by contrast, is checked against
  // the retained census below.
  if (num_views > kMaxHierarchicalViews) {
    return Status::InvalidArgument(
        "hierarchical lattice has " + std::to_string(num_views) +
        " views, over the ceiling of " +
        std::to_string(kMaxHierarchicalViews) +
        "; coarsen or drop hierarchy levels");
  }
  if (Status s = ValidateHierarchicalWorkload(schema, workload); !s.ok()) {
    return s;
  }

  SparseHierarchicalCubeGraph result;
  SparseBuildStats& stats = result.stats;
  stats.workload_queries = workload.size();

  // --- 1. Query pruning (policy layer).
  std::vector<double> frequency;
  frequency.reserve(workload.size());
  for (const WeightedHQuery& wq : workload) {
    frequency.push_back(wq.frequency);
  }
  QueryPruneResult pruned = PruneQueriesByMass(
      frequency, options.top_queries, options.query_mass);
  std::vector<WeightedHQuery> retained;
  retained.reserve(pruned.retained.size());
  for (uint32_t qi : pruned.retained) {
    retained.push_back(workload[qi]);
  }
  stats.total_mass = pruned.total_mass;
  stats.retained_mass = pruned.retained_mass;
  stats.dropped_mass = stats.total_mass - stats.retained_mass;
  stats.retained_queries = retained.size();

  HierarchicalLattice lattice(&schema);
  const size_t nq = retained.size();
  // Per retained query: coarsest answering level per dimension and the
  // selected-dimension mask, hoisted for the cone walks and candidate
  // classes below.
  std::vector<int> required_flat(nq * static_cast<size_t>(n));
  std::vector<uint32_t> sel_mask(nq, 0);
  for (size_t qi = 0; qi < nq; ++qi) {
    for (int d = 0; d < n; ++d) {
      const HDimRole& role = retained[qi].query.role(d);
      required_flat[qi * static_cast<size_t>(n) + static_cast<size_t>(d)] =
          role.kind == HDimRole::kAbsent ? schema.all_level(d) : role.level;
      if (role.kind == HDimRole::kSelect) {
        sel_mask[qi] |= 1u << d;
      }
    }
  }

  // --- 2. View retention (policy layer): each retained query's answer
  // cone is the mixed-radix box [0, required_d] per dimension, walked as
  // an odometer (ascending lattice ids).
  std::vector<uint32_t> hot_order(nq);
  std::iota(hot_order.begin(), hot_order.end(), 0u);
  std::stable_sort(hot_order.begin(), hot_order.end(),
                   [&](uint32_t a, uint32_t b) {
                     return retained[a].frequency > retained[b].frequency;
                   });
  std::vector<int> cone_lv(static_cast<size_t>(n));
  ViewRetentionResult retention = RetainSupersetViews(
      num_views, lattice.BaseView(), hot_order, options.max_views,
      [&](uint32_t qi) {
        return lattice.IdOf(retained[qi].query.RequiredLevels(schema));
      },
      [&](uint32_t qi, auto&& visit) {
        const int* req = required_flat.data() +
                         size_t{qi} * static_cast<size_t>(n);
        std::fill(cone_lv.begin(), cone_lv.end(), 0);
        uint64_t v = 0;
        for (;;) {
          if (!visit(v)) return;
          int d = 0;
          while (d < n && cone_lv[static_cast<size_t>(d)] == req[d]) {
            v -= static_cast<uint64_t>(cone_lv[static_cast<size_t>(d)]) *
                 lattice.stride(d);
            cone_lv[static_cast<size_t>(d)] = 0;
            ++d;
          }
          if (d == n) return;
          ++cone_lv[static_cast<size_t>(d)];
          v += lattice.stride(d);
        }
      });
  const std::vector<uint64_t>& view_ids = retention.view_ids;
  const std::vector<int32_t>& id_of = retention.id_of;
  const size_t nv = view_ids.size();
  stats.retained_views = nv;
  stats.view_cap_hit = retention.cap_hit;
  stats.views_dropped = retention.views_dropped;
  stats.views_dropped_truncated = retention.views_dropped_truncated;

  // --- 3. Candidate index families (policy layer) + retained structure
  // census. Wide views get one key per distinct selection class of the
  // retained answerable queries: selected dimensions leading (ascending),
  // remaining active dimensions trailing (ascending).
  std::vector<int> levels_flat(nv * static_cast<size_t>(n));
  std::vector<uint32_t> active_mask(nv, 0);
  for (size_t v = 0; v < nv; ++v) {
    const LevelVector levels = lattice.LevelsOf(view_ids[v]);
    for (int d = 0; d < n; ++d) {
      const int level = levels.level(d);
      levels_flat[v * static_cast<size_t>(n) + static_cast<size_t>(d)] =
          level;
      if (level != schema.all_level(d)) active_mask[v] |= 1u << d;
    }
  }
  std::vector<std::vector<std::vector<int>>> orders(nv);
  uint64_t total_structures = 0;
  for (size_t v = 0; v < nv; ++v) {
    const int m = std::popcount(active_mask[v]);
    if (m <= options.max_fat_dim) {
      ++stats.fat_views;
      total_structures += 1 + static_cast<uint64_t>(NumIndexesForActive(
                                  m, /*fat_indexes_only=*/true));
    } else {
      ++stats.candidate_views;
      const int* lvf =
          levels_flat.data() + v * static_cast<size_t>(n);
      const std::vector<uint32_t> classes = CollectCandidateClasses(
          nq, [&](size_t q) -> uint32_t {
            const int* req =
                required_flat.data() + q * static_cast<size_t>(n);
            for (int d = 0; d < n; ++d) {
              if (lvf[d] > req[d]) return 0;  // not answerable here
            }
            return sel_mask[q] & active_mask[v];
          });
      std::vector<std::vector<int>>& family = orders[v];
      family.reserve(classes.size());
      for (uint32_t p : classes) {
        family.push_back(CandidateKeyOrder(p, active_mask[v]));
      }
      std::sort(family.begin(), family.end());
      family.erase(std::unique(family.begin(), family.end()),
                   family.end());
      stats.candidate_indexes += family.size();
      total_structures += 1 + family.size();
    }
    if (total_structures > kMaxHierarchicalStructures) {
      return Status::InvalidArgument(
          "retained hierarchical lattice carries over " +
          std::to_string(kMaxHierarchicalStructures) +
          " structures (views + indexes); prune harder (max_views / "
          "query_mass / top_queries) or coarsen the hierarchy");
    }
  }

  // --- 4. Build through the generic core.
  const std::vector<double> sizes = lattice.AnalyticalSizes(raw_rows);
  HierarchicalCubeGraph& out = result.hgraph;
  out.all_levels = AllLevelsOf(schema);
  out.fat_indexes_only = true;
  out.view_levels.reserve(nv);
  out.view_sizes.reserve(nv);
  for (size_t v = 0; v < nv; ++v) {
    out.view_sizes.push_back(sizes[view_ids[v]]);
  }

  SparseHierarchicalLatticeProvider provider{
      &schema,
      &lattice,
      &retained,
      &options,
      &view_ids,
      &id_of,
      &sizes,
      &orders,
      &levels_flat,
      &out,
      n,
      num_views - 1,
      static_cast<uint32_t>(id_of[lattice.BaseView()])};
  LatticeGraphOptions build;
  build.default_query_cost = options.default_query_cost;
  build.raw_scan_penalty = options.raw_scan_penalty;
  build.maintenance_per_row = options.maintenance_per_row;
  build.num_threads = options.num_threads;
  build.cost_model = options.cost_model.get();
  build.sink_window_bytes = options.sink_window_bytes;
  BuildLatticeGraph(provider, build, out.graph, &stats.build);
  out.index_orders = std::move(orders);

  graph_build_metrics::SparseStats metric;
  metric.workload_queries = stats.workload_queries;
  metric.retained_queries = stats.retained_queries;
  metric.retained_mass_permille =
      stats.total_mass > 0.0
          ? static_cast<uint64_t>(1000.0 * stats.retained_mass /
                                  stats.total_mass)
          : 1000;
  metric.retained_views = stats.retained_views;
  metric.views_dropped = stats.views_dropped;
  metric.candidate_views = stats.candidate_views;
  metric.candidate_indexes = stats.candidate_indexes;
  graph_build_metrics::RecordSparseBuild(metric);
  return result;
}

}  // namespace olapidx
