#include "hierarchy/hierarchical_executor.h"

#include <algorithm>

namespace olapidx {

namespace {

// Accumulates (group key at query levels → aggregate state), emitting rows
// in lexicographic key order.
class HGroupAccumulator {
 public:
  explicit HGroupAccumulator(std::vector<int> group_dims)
      : group_dims_(std::move(group_dims)) {}

  void Add(std::vector<uint32_t> key, const AggregateState& state) {
    groups_[std::move(key)].Merge(state);
  }

  HGroupedResult Finish() const {
    HGroupedResult out;
    out.group_dims = group_dims_;
    for (const auto& [key, state] : groups_) {
      out.keys.push_back(key);
      out.aggregates.push_back(state);
    }
    return out;
  }

 private:
  std::vector<int> group_dims_;
  std::map<std::vector<uint32_t>, AggregateState> groups_;
};

}  // namespace

HierarchicalCatalog::HierarchicalCatalog(const FactTable* fact,
                                         const HierarchyMaps* maps)
    : fact_(fact), maps_(maps), lattice_(&maps->schema()) {
  OLAPIDX_CHECK(fact != nullptr);
  OLAPIDX_CHECK(maps != nullptr);
  for (int d = 0; d < maps->schema().num_dimensions(); ++d) {
    OLAPIDX_CHECK(maps->dimension(d).IsClustered());
  }
}

size_t HierarchicalCatalog::MaterializeView(const LevelVector& levels) {
  HViewId id = lattice_.IdOf(levels);
  auto it = views_.find(id);
  if (it != views_.end()) return it->second->view.num_rows();
  auto lv = std::make_unique<LeveledView>(LeveledView{
      levels, lattice_.ActiveDimensions(levels),
      MaterializeHierarchicalView(*fact_, *maps_, levels),
      {}});
  size_t rows = lv->view.num_rows();
  views_.emplace(id, std::move(lv));
  order_.push_back(levels);
  return rows;
}

bool HierarchicalCatalog::HasView(const LevelVector& levels) const {
  return views_.count(lattice_.IdOf(levels)) > 0;
}

const HierarchicalCatalog::LeveledView* HierarchicalCatalog::Find(
    const LevelVector& levels) const {
  auto it = views_.find(lattice_.IdOf(levels));
  return it == views_.end() ? nullptr : it->second.get();
}

void HierarchicalCatalog::BuildIndex(const LevelVector& levels,
                                     const std::vector<int>& dim_order) {
  auto it = views_.find(lattice_.IdOf(levels));
  OLAPIDX_CHECK(it != views_.end());
  LeveledView& lv = *it->second;
  for (const LeveledView::Index& existing : lv.indexes) {
    if (existing.dim_order == dim_order) return;
  }
  // Translate hierarchy dimension ids to leveled-schema positions.
  std::vector<int> positions;
  for (int d : dim_order) {
    auto pos = std::find(lv.active_dims.begin(), lv.active_dims.end(), d);
    OLAPIDX_CHECK(pos != lv.active_dims.end());
    positions.push_back(static_cast<int>(pos - lv.active_dims.begin()));
  }
  lv.indexes.push_back(LeveledView::Index{
      dim_order, ViewIndex(lv.view, IndexKey(positions))});
}

double HierarchicalCatalog::TotalSpaceRows() const {
  double total = 0.0;
  for (const auto& [id, lv] : views_) {
    (void)id;
    total += static_cast<double>(lv->view.num_rows());
    for (const LeveledView::Index& index : lv->indexes) {
      total += static_cast<double>(index.index.num_entries());
    }
  }
  return total;
}

HierarchicalExecutor::HierarchicalExecutor(
    const HierarchicalCatalog* catalog)
    : catalog_(catalog) {
  OLAPIDX_CHECK(catalog != nullptr);
}

HGroupedResult HierarchicalExecutor::Execute(
    const HSliceQuery& query, const std::vector<uint32_t>& selection_values,
    HExecutionStats* stats) const {
  const HierarchicalSchema& schema = catalog_->schema();
  const HierarchyMaps& maps = catalog_->maps();

  // Selection value per dimension id, and the dim lists.
  std::vector<int> select_dims, group_dims;
  std::vector<uint32_t> sel_value(
      static_cast<size_t>(schema.num_dimensions()), 0);
  {
    size_t vi = 0;
    for (int d = 0; d < schema.num_dimensions(); ++d) {
      if (query.role(d).kind == HDimRole::kSelect) {
        OLAPIDX_CHECK(vi < selection_values.size());
        sel_value[static_cast<size_t>(d)] = selection_values[vi++];
        select_dims.push_back(d);
      } else if (query.role(d).kind == HDimRole::kGroupBy) {
        group_dims.push_back(d);
      }
    }
    OLAPIDX_CHECK(vi == selection_values.size());
  }

  // ---- Plan ----
  struct Plan {
    bool use_raw = true;
    const HierarchicalCatalog::LeveledView* view = nullptr;
    const HierarchicalCatalog::LeveledView::Index* index = nullptr;
    int point_prefix = 0;   // leading exact-level selected dims in the key
    int range_dim = -1;     // coarser-selected dim after the points, or -1
    double estimated_cost = 0.0;
  };
  Plan plan;
  plan.estimated_cost = static_cast<double>(catalog_->fact().num_rows());

  for (const LevelVector& levels : catalog_->materialized_views()) {
    if (!query.AnswerableFrom(levels, schema)) continue;
    const HierarchicalCatalog::LeveledView* lv = catalog_->Find(levels);
    double view_rows = static_cast<double>(lv->view.num_rows());
    if (view_rows < plan.estimated_cost) {
      plan = Plan{false, lv, nullptr, 0, -1, view_rows};
    }
    for (const auto& index : lv->indexes) {
      // Contiguous usable prefix: point dims (selected at exactly the
      // view's level), then optionally one coarser-selected range dim.
      int points = 0;
      int range_dim = -1;
      double selectivity = 1.0;
      for (int d : index.dim_order) {
        if (query.role(d).kind != HDimRole::kSelect) break;
        int view_level = levels.level(d);
        int sel_level = query.role(d).level;
        if (sel_level == view_level) {
          ++points;
          selectivity *=
              static_cast<double>(schema.cardinality(d, sel_level));
        } else {
          range_dim = d;
          selectivity *=
              static_cast<double>(schema.cardinality(d, sel_level));
          break;  // a range ends the contiguous region
        }
      }
      if (points == 0 && range_dim < 0) continue;
      double est = std::max(1.0, view_rows / selectivity);
      if (est < plan.estimated_cost) {
        plan = Plan{false, lv, &index, points, range_dim, est};
      }
    }
  }

  // ---- Execute ----
  HGroupAccumulator acc(group_dims);
  uint64_t rows_processed = 0;

  // Filters/aggregation for a row whose codes live at `row_levels`.
  auto process_row = [&](const LevelVector& row_levels, auto&& code_of,
                         const AggregateState& state) {
    for (int d : select_dims) {
      uint32_t mapped = maps.dimension(d).MapUp(
          row_levels.level(d), query.role(d).level, code_of(d));
      if (mapped != sel_value[static_cast<size_t>(d)]) return;
    }
    std::vector<uint32_t> key;
    key.reserve(group_dims.size());
    for (int d : group_dims) {
      key.push_back(maps.dimension(d).MapUp(
          row_levels.level(d), query.role(d).level, code_of(d)));
    }
    acc.Add(std::move(key), state);
  };

  if (plan.use_raw) {
    const FactTable& fact = catalog_->fact();
    LevelVector finest(
        std::vector<int>(static_cast<size_t>(schema.num_dimensions()), 0));
    for (size_t r = 0; r < fact.num_rows(); ++r) {
      ++rows_processed;
      process_row(
          finest, [&](int d) { return fact.dim(r, d); },
          AggregateState::OfMeasure(fact.measure(r)));
    }
  } else {
    const HierarchicalCatalog::LeveledView& lv = *plan.view;
    // View rows expose codes by hierarchy dim via active-dim positions.
    auto code_of_row = [&](size_t r) {
      return [&, r](int d) {
        auto pos =
            std::find(lv.active_dims.begin(), lv.active_dims.end(), d);
        OLAPIDX_DCHECK(pos != lv.active_dims.end());
        return lv.view.dim(
            r, static_cast<int>(pos - lv.active_dims.begin()));
      };
    };
    if (plan.index == nullptr) {
      for (size_t r = 0; r < lv.view.num_rows(); ++r) {
        ++rows_processed;
        process_row(lv.levels, code_of_row(r), lv.view.aggregate(r));
      }
    } else {
      std::vector<uint32_t> points;
      for (int i = 0; i < plan.point_prefix; ++i) {
        int d = plan.index->dim_order[static_cast<size_t>(i)];
        points.push_back(sel_value[static_cast<size_t>(d)]);
      }
      auto visit = [&](uint32_t r) {
        process_row(lv.levels, code_of_row(r), lv.view.aggregate(r));
      };
      if (plan.range_dim >= 0) {
        int d = plan.range_dim;
        auto [lo, hi] = maps.dimension(d).ChildRange(
            lv.levels.level(d), query.role(d).level,
            sel_value[static_cast<size_t>(d)],
            static_cast<uint32_t>(
                schema.cardinality(d, lv.levels.level(d))));
        if (lo <= hi) {
          rows_processed +=
              plan.index->index.ScanPrefixRange(points, lo, hi, visit);
        }
      } else {
        rows_processed += plan.index->index.ScanPrefix(points, visit);
      }
    }
  }

  if (stats != nullptr) {
    stats->rows_processed = rows_processed;
    stats->used_raw = plan.use_raw;
    if (!plan.use_raw) stats->view = plan.view->levels;
    stats->index_order =
        plan.index != nullptr ? plan.index->dim_order : std::vector<int>();
    stats->estimated_cost = plan.estimated_cost;
  }
  return acc.Finish();
}

HGroupedResult HierarchicalExecutor::ExecuteNaive(
    const HSliceQuery& query,
    const std::vector<uint32_t>& selection_values) const {
  const HierarchicalSchema& schema = catalog_->schema();
  const HierarchyMaps& maps = catalog_->maps();
  const FactTable& fact = catalog_->fact();

  std::vector<int> select_dims, group_dims;
  std::vector<uint32_t> sel_value(
      static_cast<size_t>(schema.num_dimensions()), 0);
  size_t vi = 0;
  for (int d = 0; d < schema.num_dimensions(); ++d) {
    if (query.role(d).kind == HDimRole::kSelect) {
      sel_value[static_cast<size_t>(d)] = selection_values[vi++];
      select_dims.push_back(d);
    } else if (query.role(d).kind == HDimRole::kGroupBy) {
      group_dims.push_back(d);
    }
  }
  OLAPIDX_CHECK(vi == selection_values.size());

  HGroupAccumulator acc(group_dims);
  for (size_t r = 0; r < fact.num_rows(); ++r) {
    bool match = true;
    for (int d : select_dims) {
      if (maps.dimension(d).MapUp(0, query.role(d).level, fact.dim(r, d)) !=
          sel_value[static_cast<size_t>(d)]) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    std::vector<uint32_t> key;
    for (int d : group_dims) {
      key.push_back(
          maps.dimension(d).MapUp(0, query.role(d).level, fact.dim(r, d)));
    }
    acc.Add(std::move(key), AggregateState::OfMeasure(fact.measure(r)));
  }
  return acc.Finish();
}

}  // namespace olapidx
