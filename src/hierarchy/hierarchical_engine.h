// Bridge between the hierarchical lattice and the execution engine: given
// a fact table coded at each dimension's *finest* level plus the
// child→parent level maps, materialize the subcube at any level vector as
// a regular MaterializedView (over a per-view schema whose cardinalities
// are the chosen levels'). This is what lets hierarchical selections be
// physically built and measured, not just costed.

#ifndef OLAPIDX_HIERARCHY_HIERARCHICAL_ENGINE_H_
#define OLAPIDX_HIERARCHY_HIERARCHICAL_ENGINE_H_

#include "engine/materialized_view.h"
#include "hierarchy/hierarchical_cube.h"
#include "hierarchy/level_map.h"

namespace olapidx {

// The flat schema of a hierarchical view: one dimension per *active* (non-
// ALL) dimension of `levels`, with that level's cardinality; names are
// "dim.level". Attribute order follows dimension order.
CubeSchema LeveledSchema(const HierarchicalSchema& schema,
                         const LevelVector& levels);

// Re-codes `fact` (finest-level codes, schema must have one column per
// hierarchy dimension with the finest cardinalities) up to `levels` and
// aggregates. The resulting view's schema is LeveledSchema(...), so its
// attribute ids are positions among the active dimensions.
MaterializedView MaterializeHierarchicalView(const FactTable& fact,
                                             const HierarchyMaps& maps,
                                             const LevelVector& levels);

// A finest-level fact table for the hierarchical schema: uniform draws at
// each dimension's level 0 (companion to data/fact_generator.h).
FactTable GenerateHierarchicalFacts(const HierarchicalSchema& schema,
                                    size_t rows, uint64_t seed);

}  // namespace olapidx

#endif  // OLAPIDX_HIERARCHY_HIERARCHICAL_ENGINE_H_
