#include "hierarchy/hierarchical_advisor.h"

namespace olapidx {

HierarchicalAdvisor::HierarchicalAdvisor(
    const HierarchicalSchema& schema, double raw_rows,
    const std::vector<WeightedHQuery>& workload,
    const HierarchicalGraphOptions& options)
    : schema_(schema),
      cube_graph_(
          BuildHierarchicalCubeGraph(schema, raw_rows, workload, options)) {
}

HRecommendation HierarchicalAdvisor::Recommend(
    const AdvisorConfig& config) const {
  SelectionResult result;
  switch (config.algorithm) {
    case Algorithm::kOneGreedy:
      result = OneGreedy(cube_graph_.graph, config.space_budget);
      break;
    case Algorithm::kRGreedy:
      result = RGreedy(cube_graph_.graph, config.space_budget,
                       config.r_greedy);
      break;
    case Algorithm::kInnerLevel:
      result = InnerLevelGreedy(cube_graph_.graph, config.space_budget,
                                config.inner_greedy);
      break;
    case Algorithm::kTwoStep:
      result = TwoStep(cube_graph_.graph, config.space_budget,
                       config.two_step);
      break;
    case Algorithm::kHruViewsOnly:
      result = HruViewGreedy(cube_graph_.graph, config.space_budget);
      break;
    case Algorithm::kOptimal:
      result = BranchAndBoundOptimal(cube_graph_.graph,
                                     config.space_budget, config.optimal);
      break;
  }

  HRecommendation rec;
  rec.raw = result;
  rec.space_used = result.space_used;
  rec.initial_average_cost =
      result.total_frequency > 0.0
          ? result.initial_cost / result.total_frequency
          : 0.0;
  rec.average_query_cost = result.AverageQueryCost();
  for (const StructureRef& s : result.picks) {
    HRecommendedStructure r;
    r.view = cube_graph_.view_levels[s.view];
    if (!s.is_view()) {
      r.index_order =
          cube_graph_.index_orders[s.view][static_cast<size_t>(s.index)];
    }
    r.name = cube_graph_.graph.StructureName(s);
    r.space = cube_graph_.graph.structure_space(s);
    rec.structures.push_back(std::move(r));
  }
  return rec;
}

}  // namespace olapidx
