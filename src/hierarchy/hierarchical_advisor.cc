#include "hierarchy/hierarchical_advisor.h"

#include <string>
#include <utility>

namespace olapidx {

namespace {

// Resolves a checkpoint's lattice-level picks (level vectors, dimension
// orders) to this graph's StructureRefs. Fails on any pick that does not
// exist in the graph — e.g. a checkpoint taken with a different schema or
// index family.
Status ResolveCheckpoint(const HSelectionCheckpoint& checkpoint,
                         const HierarchicalCubeGraph& cube_graph,
                         ResumePicks* out) {
  out->picks.clear();
  out->pick_benefits = checkpoint.pick_benefits;
  out->stages = checkpoint.stages;
  for (size_t i = 0; i < checkpoint.picks.size(); ++i) {
    const HRecommendedStructure& s = checkpoint.picks[i];
    auto fail = [&](const std::string& message) {
      return Status::InvalidArgument("checkpoint pick " +
                                     std::to_string(i + 1) + ": " + message);
    };
    uint32_t view = 0;
    bool view_found = false;
    for (uint32_t v = 0;
         v < static_cast<uint32_t>(cube_graph.view_levels.size()); ++v) {
      if (cube_graph.view_levels[v] == s.view) {
        view = v;
        view_found = true;
        break;
      }
    }
    if (!view_found) return fail("view not in the hierarchical lattice");
    if (s.is_view()) {
      out->picks.push_back(StructureRef{view, StructureRef::kNoIndex});
      continue;
    }
    const int32_t index = cube_graph.IndexPositionOf(view, s.index_order);
    if (index < 0) {
      return fail("index order not in the view's index family");
    }
    out->picks.push_back(StructureRef{view, index});
  }
  return Status::Ok();
}

HRecommendation RejectedRecommendation(Status status) {
  HRecommendation rec;
  rec.raw = SelectionResult::Rejected(std::move(status));
  rec.status = rec.raw.status;
  rec.completed = false;
  return rec;
}

}  // namespace

HierarchicalAdvisor::HierarchicalAdvisor(
    const HierarchicalSchema& schema, double raw_rows,
    const std::vector<WeightedHQuery>& workload,
    const HierarchicalGraphOptions& options)
    : schema_(schema),
      cube_graph_(
          BuildHierarchicalCubeGraph(schema, raw_rows, workload, options)) {
}

HierarchicalAdvisor::HierarchicalAdvisor(const HierarchicalSchema& schema,
                                         HierarchicalCubeGraph cube_graph)
    : schema_(schema),
      cube_graph_(std::move(cube_graph)),
      graph_fingerprint_(cube_graph_.graph.Fingerprint()) {}

StatusOr<HierarchicalAdvisor> HierarchicalAdvisor::Create(
    const HierarchicalSchema& schema, double raw_rows,
    const std::vector<WeightedHQuery>& workload,
    const HierarchicalGraphOptions& options) {
  StatusOr<HierarchicalCubeGraph> cube_graph =
      TryBuildHierarchicalCubeGraph(schema, raw_rows, workload, options);
  if (!cube_graph.ok()) {
    return cube_graph.status().WithContext("building the query-view graph");
  }
  return HierarchicalAdvisor(schema, *std::move(cube_graph));
}

StatusOr<HierarchicalAdvisor> HierarchicalAdvisor::CreateSparse(
    const HierarchicalSchema& schema, double raw_rows,
    const std::vector<WeightedHQuery>& workload,
    const SparseHierarchicalGraphOptions& options) {
  StatusOr<SparseHierarchicalCubeGraph> sparse =
      TryBuildSparseHierarchicalCubeGraph(schema, raw_rows, workload,
                                          options);
  if (!sparse.ok()) {
    return sparse.status().WithContext(
        "building the sparse hierarchical query-view graph");
  }
  HierarchicalAdvisor advisor(schema, std::move(sparse->hgraph));
  advisor.sparse_stats_ = std::move(sparse->stats);
  return advisor;
}

HRecommendation HierarchicalAdvisor::TryRecommend(
    const AdvisorConfig& config, const HSelectionCheckpoint* resume) const {
  const bool greedy = config.algorithm == Algorithm::kOneGreedy ||
                      config.algorithm == Algorithm::kRGreedy ||
                      config.algorithm == Algorithm::kInnerLevel;
  if (config.resume != nullptr) {
    return RejectedRecommendation(Status::InvalidArgument(
        "flat-cube checkpoints (AdvisorConfig::resume) cannot be resolved "
        "against a hierarchical lattice; pass an HSelectionCheckpoint"));
  }
  if (!greedy && !config.control.unlimited()) {
    return RejectedRecommendation(Status::Unimplemented(
        std::string(AlgorithmName(config.algorithm)) +
        " has no anytime contract; deadlines/cancellation require a greedy "
        "algorithm"));
  }
  if (!greedy && resume != nullptr) {
    return RejectedRecommendation(Status::InvalidArgument(
        std::string(AlgorithmName(config.algorithm)) +
        " cannot resume from a checkpoint"));
  }

  ResumePicks resume_picks;
  const ResumePicks* resume_ptr = nullptr;
  if (resume != nullptr) {
    if (resume->algorithm != AlgorithmName(config.algorithm)) {
      return RejectedRecommendation(Status::InvalidArgument(
          "checkpoint was taken by '" + resume->algorithm + "', not '" +
          AlgorithmName(config.algorithm) +
          "'; resuming would not reproduce the original pick sequence"));
    }
    if (resume->space_budget != config.space_budget) {
      return RejectedRecommendation(Status::InvalidArgument(
          "checkpoint budget " + std::to_string(resume->space_budget) +
          " does not match configured budget " +
          std::to_string(config.space_budget)));
    }
    if (resume->graph_fingerprint != 0 &&
        resume->graph_fingerprint != graph_fingerprint_) {
      return RejectedRecommendation(Status::FailedPrecondition(
          "checkpoint was taken against a different query-view graph "
          "(checkpoint graph fingerprint does not match this advisor's); "
          "rebuild with the same schema, row counts, workload, and "
          "options, or start a fresh selection"));
    }
    Status resolved = ResolveCheckpoint(*resume, cube_graph_, &resume_picks);
    if (!resolved.ok()) return RejectedRecommendation(std::move(resolved));
    resume_ptr = &resume_picks;
  }

  SelectionResult result;
  switch (config.algorithm) {
    case Algorithm::kOneGreedy: {
      RGreedyOptions options = config.r_greedy;
      options.r = 1;
      if (!config.control.unlimited()) options.control = config.control;
      if (resume_ptr != nullptr) options.resume = resume_ptr;
      result = RGreedy(cube_graph_.graph, config.space_budget, options);
      break;
    }
    case Algorithm::kRGreedy: {
      RGreedyOptions options = config.r_greedy;
      if (!config.control.unlimited()) options.control = config.control;
      if (resume_ptr != nullptr) options.resume = resume_ptr;
      result = RGreedy(cube_graph_.graph, config.space_budget, options);
      break;
    }
    case Algorithm::kInnerLevel: {
      InnerGreedyOptions options = config.inner_greedy;
      if (!config.control.unlimited()) options.control = config.control;
      if (resume_ptr != nullptr) options.resume = resume_ptr;
      result = InnerLevelGreedy(cube_graph_.graph, config.space_budget,
                                options);
      break;
    }
    case Algorithm::kTwoStep:
      result = TwoStep(cube_graph_.graph, config.space_budget,
                       config.two_step);
      break;
    case Algorithm::kHruViewsOnly:
      result = HruViewGreedy(cube_graph_.graph, config.space_budget);
      break;
    case Algorithm::kOptimal:
      result = BranchAndBoundOptimal(cube_graph_.graph,
                                     config.space_budget, config.optimal);
      break;
  }
  if (!result.status.ok() && !result.status.IsInterruption()) {
    return RejectedRecommendation(std::move(result.status));
  }

  HRecommendation rec;
  rec.raw = result;
  rec.status = result.status;
  rec.completed = result.completed;
  rec.space_used = result.space_used;
  rec.graph_fingerprint = graph_fingerprint_;
  rec.initial_average_cost =
      result.total_frequency > 0.0
          ? result.initial_cost / result.total_frequency
          : 0.0;
  rec.average_query_cost = result.AverageQueryCost();
  for (const StructureRef& s : result.picks) {
    HRecommendedStructure r;
    r.view = cube_graph_.view_levels[s.view];
    if (!s.is_view()) {
      r.index_order = cube_graph_.IndexOrderOf(s.view, s.index);
    }
    r.name = cube_graph_.graph.StructureName(s);
    r.space = cube_graph_.graph.structure_space(s);
    rec.structures.push_back(std::move(r));
  }
  return rec;
}

HSelectionCheckpoint HRecommendation::ToCheckpoint(
    const AdvisorConfig& config) const {
  HSelectionCheckpoint checkpoint;
  checkpoint.algorithm = AlgorithmName(config.algorithm);
  checkpoint.space_budget = config.space_budget;
  checkpoint.stages = raw.stats.stages;
  checkpoint.graph_fingerprint = graph_fingerprint;
  checkpoint.picks = structures;
  checkpoint.pick_benefits = raw.pick_benefits;
  return checkpoint;
}

}  // namespace olapidx
