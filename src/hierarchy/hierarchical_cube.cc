#include "hierarchy/hierarchical_cube.h"

#include <algorithm>

#include "cost/analytical_model.h"

namespace olapidx {

bool LevelVector::ComputableFrom(const LevelVector& other) const {
  OLAPIDX_CHECK(other.size() == size());
  for (int d = 0; d < size(); ++d) {
    if (other.level(d) > level(d)) return false;
  }
  return true;
}

LevelVector HSliceQuery::RequiredLevels(
    const HierarchicalSchema& schema) const {
  OLAPIDX_CHECK(static_cast<int>(roles_.size()) == schema.num_dimensions());
  std::vector<int> levels(roles_.size());
  for (int d = 0; d < schema.num_dimensions(); ++d) {
    const HDimRole& r = roles_[static_cast<size_t>(d)];
    levels[static_cast<size_t>(d)] =
        r.kind == HDimRole::kAbsent ? schema.all_level(d) : r.level;
  }
  return LevelVector(std::move(levels));
}

bool HSliceQuery::AnswerableFrom(const LevelVector& view,
                                 const HierarchicalSchema& schema) const {
  return RequiredLevels(schema).ComputableFrom(view);
}

std::string HSliceQuery::ToString(const HierarchicalSchema& schema) const {
  std::string group, select;
  for (int d = 0; d < schema.num_dimensions(); ++d) {
    const HDimRole& r = roles_[static_cast<size_t>(d)];
    if (r.kind == HDimRole::kAbsent) continue;
    std::string part =
        schema.dimension(d).name + "." + schema.level_name(d, r.level);
    if (r.kind == HDimRole::kGroupBy) {
      group += (group.empty() ? "" : ",") + part;
    } else {
      select += (select.empty() ? "" : ",") + part;
    }
  }
  std::string out = "g{" + (group.empty() ? "none" : group) + "}";
  if (!select.empty()) out += "s{" + select + "}";
  return out;
}

HierarchicalLattice::HierarchicalLattice(const HierarchicalSchema* schema)
    : schema_(schema) {
  OLAPIDX_CHECK(schema != nullptr);
  strides_.resize(static_cast<size_t>(schema->num_dimensions()));
  for (int d = 0; d < schema->num_dimensions(); ++d) {
    strides_[static_cast<size_t>(d)] = num_views_;
    num_views_ *= static_cast<uint64_t>(schema->radix(d));
  }
}

HViewId HierarchicalLattice::IdOf(const LevelVector& levels) const {
  OLAPIDX_CHECK(levels.size() == schema_->num_dimensions());
  HViewId id = 0;
  for (int d = 0; d < levels.size(); ++d) {
    OLAPIDX_DCHECK(levels.level(d) >= 0 &&
                   levels.level(d) <= schema_->all_level(d));
    id += static_cast<uint64_t>(levels.level(d)) *
          strides_[static_cast<size_t>(d)];
  }
  return id;
}

LevelVector HierarchicalLattice::LevelsOf(HViewId id) const {
  OLAPIDX_CHECK(id < num_views_);
  std::vector<int> levels(static_cast<size_t>(schema_->num_dimensions()));
  for (int d = 0; d < schema_->num_dimensions(); ++d) {
    levels[static_cast<size_t>(d)] = static_cast<int>(
        (id / strides_[static_cast<size_t>(d)]) %
        static_cast<uint64_t>(schema_->radix(d)));
  }
  return LevelVector(std::move(levels));
}

LevelVector HierarchicalLattice::FinestLevels() const {
  return LevelVector(
      std::vector<int>(static_cast<size_t>(schema_->num_dimensions()), 0));
}

double HierarchicalLattice::DomainSize(const LevelVector& levels) const {
  double product = 1.0;
  for (int d = 0; d < levels.size(); ++d) {
    product *=
        static_cast<double>(schema_->cardinality(d, levels.level(d)));
  }
  return product;
}

std::string HierarchicalLattice::ViewName(const LevelVector& levels) const {
  std::string out;
  for (int d = 0; d < levels.size(); ++d) {
    if (levels.level(d) == schema_->all_level(d)) continue;
    if (!out.empty()) out += "|";
    out += schema_->dimension(d).name + "." +
           schema_->level_name(d, levels.level(d));
  }
  return out.empty() ? "none" : out;
}

std::vector<int> HierarchicalLattice::ActiveDimensions(
    const LevelVector& levels) const {
  std::vector<int> active;
  for (int d = 0; d < levels.size(); ++d) {
    if (levels.level(d) != schema_->all_level(d)) active.push_back(d);
  }
  return active;
}

std::vector<std::vector<int>> HierarchicalLattice::FatIndexOrders(
    const LevelVector& levels) const {
  std::vector<int> active = ActiveDimensions(levels);
  OLAPIDX_CHECK(active.size() <= 8);
  std::vector<std::vector<int>> orders;
  if (active.empty()) return orders;
  std::sort(active.begin(), active.end());
  do {
    orders.push_back(active);
  } while (std::next_permutation(active.begin(), active.end()));
  return orders;
}

std::vector<std::vector<int>> HierarchicalLattice::AllIndexOrders(
    const LevelVector& levels) const {
  std::vector<int> active = ActiveDimensions(levels);
  OLAPIDX_CHECK(active.size() <= 6);
  std::vector<std::vector<int>> out;
  std::vector<bool> used(active.size(), false);
  std::vector<int> choice;
  auto rec = [&](auto&& self, int depth, int r) -> void {
    if (depth == r) {
      out.push_back(choice);
      return;
    }
    for (size_t i = 0; i < active.size(); ++i) {
      if (used[i]) continue;
      used[i] = true;
      choice.push_back(active[i]);
      self(self, depth + 1, r);
      choice.pop_back();
      used[i] = false;
    }
  };
  for (int r = 1; r <= static_cast<int>(active.size()); ++r) {
    rec(rec, 0, r);
  }
  return out;
}

std::vector<double> HierarchicalLattice::AnalyticalSizes(
    double raw_rows) const {
  OLAPIDX_CHECK(raw_rows >= 1.0);
  std::vector<double> sizes(num_views_);
  for (HViewId v = 0; v < num_views_; ++v) {
    sizes[v] = std::max(
        1.0, ExpectedDistinct(DomainSize(LevelsOf(v)), raw_rows));
  }
  return sizes;
}

std::vector<HSliceQuery> EnumerateAllHQueries(
    const HierarchicalSchema& schema) {
  // Per dimension: 1 (absent) + num_levels group-by + num_levels select.
  uint64_t total = 1;
  for (int d = 0; d < schema.num_dimensions(); ++d) {
    total *= static_cast<uint64_t>(1 + 2 * schema.num_levels(d));
  }
  std::vector<HSliceQuery> out;
  out.reserve(total);
  for (uint64_t code = 0; code < total; ++code) {
    std::vector<HDimRole> roles(
        static_cast<size_t>(schema.num_dimensions()));
    uint64_t c = code;
    for (int d = 0; d < schema.num_dimensions(); ++d) {
      uint64_t radix = static_cast<uint64_t>(1 + 2 * schema.num_levels(d));
      int choice = static_cast<int>(c % radix);
      c /= radix;
      HDimRole& role = roles[static_cast<size_t>(d)];
      if (choice == 0) {
        role.kind = HDimRole::kAbsent;
      } else if (choice <= schema.num_levels(d)) {
        role.kind = HDimRole::kGroupBy;
        role.level = choice - 1;
      } else {
        role.kind = HDimRole::kSelect;
        role.level = choice - 1 - schema.num_levels(d);
      }
    }
    out.emplace_back(std::move(roles));
  }
  return out;
}

}  // namespace olapidx
