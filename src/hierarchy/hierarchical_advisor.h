// HierarchicalAdvisor: the high-level recommendation API for hierarchical
// cubes — the counterpart of core/advisor.h over the level-vector lattice.
// Returns picks as (level vector, optional index dimension order), ready to
// feed HierarchicalCatalog.

#ifndef OLAPIDX_HIERARCHY_HIERARCHICAL_ADVISOR_H_
#define OLAPIDX_HIERARCHY_HIERARCHICAL_ADVISOR_H_

#include <string>
#include <vector>

#include "core/advisor.h"
#include "hierarchy/hierarchical_graph.h"

namespace olapidx {

struct HRecommendedStructure {
  LevelVector view;
  // Empty = the view itself; otherwise a fat index keyed in this
  // hierarchy-dimension order.
  std::vector<int> index_order;
  std::string name;
  double space = 0.0;

  bool is_view() const { return index_order.empty(); }
};

struct HRecommendation {
  std::vector<HRecommendedStructure> structures;
  double space_used = 0.0;
  double initial_average_cost = 0.0;
  double average_query_cost = 0.0;
  SelectionResult raw;
};

class HierarchicalAdvisor {
 public:
  HierarchicalAdvisor(const HierarchicalSchema& schema, double raw_rows,
                      const std::vector<WeightedHQuery>& workload,
                      const HierarchicalGraphOptions& options = {});

  const HierarchicalCubeGraph& cube_graph() const { return cube_graph_; }

  // Supports the greedy algorithms and the exact solver; two-step uses
  // the config's two_step options.
  HRecommendation Recommend(const AdvisorConfig& config) const;

 private:
  HierarchicalSchema schema_;
  HierarchicalCubeGraph cube_graph_;
};

}  // namespace olapidx

#endif  // OLAPIDX_HIERARCHY_HIERARCHICAL_ADVISOR_H_
