// HierarchicalAdvisor: the high-level recommendation API for hierarchical
// cubes — the counterpart of core/advisor.h over the level-vector lattice,
// with the same resilient runtime surface: Status-propagating Create,
// TryRecommend with RunControl (deadline / stage budget / cancellation)
// for the greedy algorithms, and checkpoint/resume in lattice terms (level
// vectors and dimension orders, not graph ids). Returns picks as (level
// vector, optional index dimension order), ready to feed
// HierarchicalCatalog.

#ifndef OLAPIDX_HIERARCHY_HIERARCHICAL_ADVISOR_H_
#define OLAPIDX_HIERARCHY_HIERARCHICAL_ADVISOR_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/advisor.h"
#include "hierarchy/hierarchical_graph.h"

namespace olapidx {

struct HRecommendedStructure {
  LevelVector view;
  // Empty = the view itself; otherwise a fat index keyed in this
  // hierarchy-dimension order.
  std::vector<int> index_order;
  std::string name;
  double space = 0.0;

  bool is_view() const { return index_order.empty(); }
};

// The pick prefix of an interrupted greedy run, in lattice terms (level
// vectors and dimension orders) so it survives re-building the graph in a
// later process. The hierarchical counterpart of SelectionCheckpoint;
// `algorithm` and `space_budget` let the resuming run verify it is
// continuing the same selection problem.
struct HSelectionCheckpoint {
  std::string algorithm;  // AlgorithmName() of the original run
  double space_budget = 0.0;
  uint64_t stages = 0;    // greedy stages the prefix represents
  // QueryViewGraph::Fingerprint() of the hierarchical graph the checkpoint
  // was taken against; 0 = not stamped. TryRecommend rejects a nonzero
  // mismatch (same contract as the flat SelectionCheckpoint).
  uint64_t graph_fingerprint = 0;
  std::vector<HRecommendedStructure> picks;  // in original pick order
  std::vector<double> pick_benefits;         // parallel to picks (the a_i)
};

struct HRecommendation {
  // Run outcome, mirroring raw.status: OK = complete; an interruption code
  // = anytime partial design (still fully usable); any other code = the
  // config or checkpoint was rejected and the recommendation is empty.
  Status status;
  bool completed = true;
  std::vector<HRecommendedStructure> structures;
  double space_used = 0.0;
  double initial_average_cost = 0.0;
  double average_query_cost = 0.0;
  // Fingerprint of the graph this recommendation was computed against
  // (copied into checkpoints by ToCheckpoint); 0 only for rejected runs.
  uint64_t graph_fingerprint = 0;
  SelectionResult raw;

  // Packages this (typically interrupted) recommendation as a resumable
  // checkpoint, stamped with the producing config's algorithm and budget.
  HSelectionCheckpoint ToCheckpoint(const AdvisorConfig& config) const;
};

class HierarchicalAdvisor {
 public:
  // Aborts on an unsupported schema/workload (dimension limits, lattice
  // size ceilings); prefer Create at external boundaries.
  HierarchicalAdvisor(const HierarchicalSchema& schema, double raw_rows,
                      const std::vector<WeightedHQuery>& workload,
                      const HierarchicalGraphOptions& options = {});

  // Status-propagating construction: surfaces
  // TryBuildHierarchicalCubeGraph errors (bad row counts, oversized
  // lattices, malformed query roles) instead of aborting.
  static StatusOr<HierarchicalAdvisor> Create(
      const HierarchicalSchema& schema, double raw_rows,
      const std::vector<WeightedHQuery>& workload,
      const HierarchicalGraphOptions& options = {});

  // Workload-pruned construction (TryBuildSparseHierarchicalCubeGraph):
  // the same recommendation surface over a pruned lattice. Recommendations
  // and plans cover the *retained* query set; sparse_stats() reports what
  // was dropped.
  static StatusOr<HierarchicalAdvisor> CreateSparse(
      const HierarchicalSchema& schema, double raw_rows,
      const std::vector<WeightedHQuery>& workload,
      const SparseHierarchicalGraphOptions& options = {});

  // Pruning/build telemetry of CreateSparse; nullptr for dense advisors.
  const SparseBuildStats* sparse_stats() const {
    return sparse_stats_ ? &*sparse_stats_ : nullptr;
  }

  const HierarchicalCubeGraph& cube_graph() const { return cube_graph_; }
  const HierarchicalSchema& schema() const { return schema_; }
  // QueryViewGraph::Fingerprint() of this advisor's graph, computed once
  // at construction (the graph is immutable from then on).
  uint64_t graph_fingerprint() const { return graph_fingerprint_; }

  // Supports the greedy algorithms and the exact solver; two-step uses
  // the config's two_step options. config.control interrupts the greedy
  // algorithms anytime-style; `resume` warm-starts them from a checkpoint
  // (algorithm tag and budget must match, picks are resolved against this
  // graph). config.resume (the *flat* checkpoint slot) must be null here —
  // flat attribute-set checkpoints cannot be resolved against a
  // hierarchical lattice.
  HRecommendation TryRecommend(
      const AdvisorConfig& config,
      const HSelectionCheckpoint* resume = nullptr) const;

  // TryRecommend without interruption/resume plumbing (the historical
  // surface; keeps aborting-constructor callers unchanged).
  HRecommendation Recommend(const AdvisorConfig& config) const {
    return TryRecommend(config);
  }

 private:
  HierarchicalAdvisor(const HierarchicalSchema& schema,
                      HierarchicalCubeGraph cube_graph);

  HierarchicalSchema schema_;
  HierarchicalCubeGraph cube_graph_;
  uint64_t graph_fingerprint_ = 0;
  std::optional<SparseBuildStats> sparse_stats_;
};

}  // namespace olapidx

#endif  // OLAPIDX_HIERARCHY_HIERARCHICAL_ADVISOR_H_
