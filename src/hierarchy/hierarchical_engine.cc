#include "hierarchy/hierarchical_engine.h"

#include "common/rng.h"

namespace olapidx {

CubeSchema LeveledSchema(const HierarchicalSchema& schema,
                         const LevelVector& levels) {
  OLAPIDX_CHECK(levels.size() == schema.num_dimensions());
  std::vector<Dimension> dims;
  for (int d = 0; d < schema.num_dimensions(); ++d) {
    int level = levels.level(d);
    if (level == schema.all_level(d)) continue;
    dims.push_back(
        Dimension{schema.dimension(d).name + "." +
                      schema.level_name(d, level),
                  schema.cardinality(d, level)});
  }
  if (dims.empty()) {
    // The apex view: keep a single degenerate dimension so the engine's
    // schema machinery stays happy; it has one member.
    dims.push_back(Dimension{"all", 1});
  }
  return CubeSchema(dims);
}

MaterializedView MaterializeHierarchicalView(const FactTable& fact,
                                             const HierarchyMaps& maps,
                                             const LevelVector& levels) {
  const HierarchicalSchema& schema = maps.schema();
  OLAPIDX_CHECK(fact.schema().num_dimensions() == schema.num_dimensions());
  for (int d = 0; d < schema.num_dimensions(); ++d) {
    OLAPIDX_CHECK(fact.schema().dimension(d).cardinality ==
                  schema.cardinality(d, 0));
  }

  CubeSchema leveled = LeveledSchema(schema, levels);
  FactTable recoded(leveled);
  recoded.Reserve(fact.num_rows());
  std::vector<int> active;
  for (int d = 0; d < schema.num_dimensions(); ++d) {
    if (levels.level(d) != schema.all_level(d)) active.push_back(d);
  }
  std::vector<uint32_t> row(
      std::max<size_t>(1, active.size()), 0);
  for (size_t r = 0; r < fact.num_rows(); ++r) {
    for (size_t i = 0; i < active.size(); ++i) {
      int d = active[i];
      row[i] = maps.dimension(d).MapUp(0, levels.level(d), fact.dim(r, d));
    }
    recoded.Append(row, fact.measure(r));
  }
  return MaterializedView::FromFactTable(
      recoded, AttributeSet::Full(leveled.num_dimensions()));
}

FactTable GenerateHierarchicalFacts(const HierarchicalSchema& schema,
                                    size_t rows, uint64_t seed) {
  std::vector<Dimension> dims;
  for (int d = 0; d < schema.num_dimensions(); ++d) {
    dims.push_back(
        Dimension{schema.dimension(d).name, schema.cardinality(d, 0)});
  }
  CubeSchema flat(dims);
  FactTable fact(flat);
  fact.Reserve(rows);
  Pcg32 rng(seed);
  std::vector<uint32_t> row(static_cast<size_t>(flat.num_dimensions()));
  for (size_t r = 0; r < rows; ++r) {
    for (int d = 0; d < flat.num_dimensions(); ++d) {
      row[static_cast<size_t>(d)] = rng.NextBounded(
          static_cast<uint32_t>(flat.dimension(d).cardinality));
    }
    fact.Append(row, 1.0 + rng.NextDouble() * 99.0);
  }
  return fact;
}

}  // namespace olapidx
