// Instantiates the Section 5.1 query-view graph for a *hierarchical* cube,
// demonstrating the paper's remark that the algorithms are robust to the
// choice of views, queries and indexes: the selection machinery in core/
// runs unchanged on this much richer lattice.
//
// Cost model, generalized: answering query Q from view V with a fat index
// keyed in dimension order D costs |V| / |E| rows, where E is the subcube
// at the longest prefix of D consisting of Q's *selection* dimensions,
// taken at Q's selection levels (with hierarchically clustered key
// encodings a finer-keyed index serves coarser selections as range scans).
// With one level per dimension this reduces exactly to the paper's model.

#ifndef OLAPIDX_HIERARCHY_HIERARCHICAL_GRAPH_H_
#define OLAPIDX_HIERARCHY_HIERARCHICAL_GRAPH_H_

#include <vector>

#include "core/query_view_graph.h"
#include "hierarchy/hierarchical_cube.h"

namespace olapidx {

struct WeightedHQuery {
  HSliceQuery query;
  double frequency = 1.0;
};

struct HierarchicalGraphOptions {
  // See CubeGraphOptions for the semantics of these knobs.
  double default_query_cost = 0.0;
  double raw_scan_penalty = 1.0;
  double maintenance_per_row = 0.0;
};

struct HierarchicalCubeGraph {
  QueryViewGraph graph;
  // graph view id -> level assignment (dense: graph view id == HViewId).
  std::vector<LevelVector> view_levels;
  // graph view id -> index position -> dimension order of the fat index.
  std::vector<std::vector<std::vector<int>>> index_orders;
  std::vector<HSliceQuery> queries;
  std::vector<double> view_sizes;  // by graph view id
};

HierarchicalCubeGraph BuildHierarchicalCubeGraph(
    const HierarchicalSchema& schema, double raw_rows,
    const std::vector<WeightedHQuery>& workload,
    const HierarchicalGraphOptions& options = {});

// Convenience: all hierarchical slice queries, equiprobable.
std::vector<WeightedHQuery> UniformHWorkload(
    const HierarchicalSchema& schema);

}  // namespace olapidx

#endif  // OLAPIDX_HIERARCHY_HIERARCHICAL_GRAPH_H_
