// Instantiates the Section 5.1 query-view graph for a *hierarchical* cube,
// demonstrating the paper's remark that the algorithms are robust to the
// choice of views, queries and indexes: the selection machinery in core/
// runs unchanged on this much richer lattice.
//
// Cost model, generalized: answering query Q from view V with a fat index
// keyed in dimension order D costs |V| / |E| rows, where E is the subcube
// at the longest prefix of D consisting of Q's *selection* dimensions,
// taken at Q's selection levels (with hierarchically clustered key
// encodings a finer-keyed index serves coarser selections as range scans).
// With one level per dimension this reduces exactly to the paper's model —
// and to the paper's *graph*: TryBuildHierarchicalCubeGraph and flat
// TryBuildCubeGraph are the same generic builder
// (core/lattice_graph_builder.h) under two LatticeProviders, and the
// degeneration is tested bit-identical.

#ifndef OLAPIDX_HIERARCHY_HIERARCHICAL_GRAPH_H_
#define OLAPIDX_HIERARCHY_HIERARCHICAL_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/pruning_policy.h"
#include "core/query_view_graph.h"
#include "cost/cost_model.h"
#include "hierarchy/hierarchical_cube.h"

namespace olapidx {

struct WeightedHQuery {
  HSliceQuery query;
  double frequency = 1.0;
};

struct HierarchicalGraphOptions {
  // See CubeGraphOptions for the semantics of these knobs.
  double default_query_cost = 0.0;
  double raw_scan_penalty = 1.0;
  double maintenance_per_row = 0.0;
  // If true (the paper's default), only fat indexes — permutations of each
  // view's active (non-ALL) dimensions — are considered. If false, every
  // ordered subset of the active dimensions becomes an index (the pruning
  // ablation, as in the flat builder).
  bool fat_indexes_only = true;
  // Threads for the edge-enumeration phase of the fast builder (0 = shared
  // pool). The resulting graph is identical for every thread count.
  size_t num_threads = 0;
  // Cost model charging every edge; null = the paper's linear model (see
  // CubeGraphOptions::cost_model).
  std::shared_ptr<const CostModel> cost_model = nullptr;
};

// Hierarchical lattices overflow much earlier than flat cubes (the view
// count is Π_d (levels_d + 1), not 2^n), so the fast builder enforces
// explicit size ceilings — the hierarchy counterpart of the flat n > 8
// fat-index guard:
//  * kMaxHierarchicalViews: every index-edge column class is keyed by a
//    view id and indexes dense Finalize() scratch, so ids must stay below
//    2^20 (see QueryViewGraph::EdgeRun::col_class).
//  * kMaxHierarchicalStructures: ceiling on views + indexes, bounding the
//    graph's memory before construction starts.
inline constexpr uint64_t kMaxHierarchicalViews = (uint64_t{1} << 20) - 1;
inline constexpr uint64_t kMaxHierarchicalStructures = uint64_t{1} << 22;

struct HierarchicalCubeGraph {
  QueryViewGraph graph;
  // graph view id -> level assignment (dense: graph view id == HViewId).
  std::vector<LevelVector> view_levels;
  // graph view id -> index position -> dimension order of the index.
  // Populated only by the reference builder; the fast path leaves it empty
  // and decodes orders on demand. Use IndexOrderOf / IndexPositionOf,
  // which work for both.
  std::vector<std::vector<std::vector<int>>> index_orders;
  std::vector<HSliceQuery> queries;
  std::vector<double> view_sizes;  // by graph view id
  // Per-dimension ALL level (= num_levels(d)), for active-dim decoding.
  std::vector<int> all_levels;
  bool fat_indexes_only = true;

  // The view's non-ALL dimensions, ascending — its index-key dimensions.
  std::vector<int> ActiveDimensionsOf(uint32_t v) const;
  // The dimension order of view v's k-th index, in the canonical family
  // order (FatIndexOrders / AllIndexOrders rank k).
  std::vector<int> IndexOrderOf(uint32_t v, int32_t k) const;
  // Inverse: the index position of `order` within v's family, or -1 when
  // `order` is not a valid key order for v.
  int32_t IndexPositionOf(uint32_t v, const std::vector<int>& order) const;
};

// Fast builder: the provider-parameterized core path (superset-odometer
// answering-view enumeration, one cost division per prefix-equivalence
// class, query-sharded parallel EdgeRun emission, lazy index names).
// Returns InvalidArgument instead of aborting for bad external input:
// raw_rows < 1, penalties < 1, negative costs/frequencies, malformed query
// roles (a mentioned dimension must sit at a proper level), > 8 dimensions
// (> 6 for the ablation family), or a lattice exceeding the size ceilings
// above.
StatusOr<HierarchicalCubeGraph> TryBuildHierarchicalCubeGraph(
    const HierarchicalSchema& schema, double raw_rows,
    const std::vector<WeightedHQuery>& workload,
    const HierarchicalGraphOptions& options = {});

// TryBuildHierarchicalCubeGraph that aborts on error (the historical
// signature; in-tree callers pass well-formed schemas).
HierarchicalCubeGraph BuildHierarchicalCubeGraph(
    const HierarchicalSchema& schema, double raw_rows,
    const std::vector<WeightedHQuery>& workload,
    const HierarchicalGraphOptions& options = {});

// The original serial builder — every view tested per query, every key
// order costed individually, every index name materialized eagerly —
// retained as the differential oracle for the fast path (tests) and as the
// baseline for bench_hierarchy. Produces a bit-identical graph.
HierarchicalCubeGraph BuildHierarchicalCubeGraphReference(
    const HierarchicalSchema& schema, double raw_rows,
    const std::vector<WeightedHQuery>& workload,
    const HierarchicalGraphOptions& options = {});

// Convenience: all hierarchical slice queries, equiprobable.
std::vector<WeightedHQuery> UniformHWorkload(
    const HierarchicalSchema& schema);

// A Zipf-weighted sample of `num_queries` distinct hierarchical slice
// queries (each dimension independently absent / group-by / select at a
// uniformly drawn level), the hierarchical counterpart of
// SampledZipfSliceQueries: the k-th distinct query drawn gets the k-th
// Zipf(skew) mass. Deterministic in `seed`.
std::vector<WeightedHQuery> SampledZipfHWorkload(
    const HierarchicalSchema& schema, size_t num_queries, double skew,
    uint64_t seed);

// The workload-pruned hierarchical construction path: the same pruning
// policies as the flat sparse builder (core/pruning_policy.h — query mass /
// top-k, superset-cone view retention with minimal-view exemption,
// workload-derived candidate index families for wide views), composed over
// the hierarchical lattice. Lifts the dense builder's n <= 8 wall: views
// with more than `max_fat_dim` active dimensions carry one fat key per
// distinct selection class of the retained answerable queries instead of
// the full m! family, preserving every retained query's best cost exactly.
//
// The lattice itself must still fit the kMaxHierarchicalViews ceiling
// (index-edge column classes are keyed by lattice subcube ids), but the
// structure ceiling applies to the *retained* census, not the full
// lattice's — pruned builds pass where dense ones overflow.
//
// When nothing is pruned — full workload, query_mass = 1, no caps, every
// view within max_fat_dim — the result is bit-identical to
// TryBuildHierarchicalCubeGraph (pinned by the equivalence test). Only the
// paper's fat-index family is supported (no pruning-ablation mode).
struct SparseHierarchicalGraphOptions {
  // See SparseCubeGraphOptions for the pruning knobs' semantics.
  size_t top_queries = 0;
  double query_mass = 1.0;
  size_t max_views = 1u << 16;
  // Views with more *active* dimensions than this get the candidate
  // family. Must be in [0, 8] (the fat-enumeration limit).
  int max_fat_dim = 6;
  bool compress_cost_columns = true;
  // See SparseCubeGraphOptions::sink_window_bytes; 0 buffers.
  size_t sink_window_bytes = size_t{1} << 18;
  // See HierarchicalGraphOptions for the rest.
  double default_query_cost = 0.0;
  double raw_scan_penalty = 1.0;
  double maintenance_per_row = 0.0;
  size_t num_threads = 0;
  std::shared_ptr<const CostModel> cost_model = nullptr;
};

struct SparseHierarchicalCubeGraph {
  // Reuses the dense result type so the hierarchical advisor, checkpoints,
  // and rendering work unchanged; graph view ids are dense in the
  // *retained* view set (ascending lattice-id order), and index_orders
  // holds the candidate families of wide views (empty per-view vectors for
  // fat views, which decode on demand).
  HierarchicalCubeGraph hgraph;
  SparseBuildStats stats;
};

StatusOr<SparseHierarchicalCubeGraph> TryBuildSparseHierarchicalCubeGraph(
    const HierarchicalSchema& schema, double raw_rows,
    const std::vector<WeightedHQuery>& workload,
    const SparseHierarchicalGraphOptions& options = {});

}  // namespace olapidx

#endif  // OLAPIDX_HIERARCHY_HIERARCHICAL_GRAPH_H_
