// Physical execution of hierarchical slice queries: a catalog of
// materialized leveled views (with B-tree indexes keyed at view levels)
// plus an executor that picks the cheapest access path, filters coarser
// selections through the level maps, aggregates to the query's group-by
// levels, and counts rows processed.
//
// Index usability on a hierarchy (clustered key encodings): a key prefix
// of point-valued dimensions (selection at exactly the view's level),
// optionally followed by one range dimension (selection at a coarser
// level — a contiguous child-code range), defines one contiguous B-tree
// range; remaining selections are post-filtered.

#ifndef OLAPIDX_HIERARCHY_HIERARCHICAL_EXECUTOR_H_
#define OLAPIDX_HIERARCHY_HIERARCHICAL_EXECUTOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/view_index.h"
#include "hierarchy/hierarchical_engine.h"

namespace olapidx {

class HierarchicalCatalog {
 public:
  // Caller owns `fact` (finest-level codes) and `maps`; both must outlive
  // the catalog. Level maps must be clustered.
  HierarchicalCatalog(const FactTable* fact, const HierarchyMaps* maps);

  HierarchicalCatalog(const HierarchicalCatalog&) = delete;
  HierarchicalCatalog& operator=(const HierarchicalCatalog&) = delete;

  const FactTable& fact() const { return *fact_; }
  const HierarchyMaps& maps() const { return *maps_; }
  const HierarchicalSchema& schema() const { return maps_->schema(); }

  // Materializes the subcube at `levels` (idempotent); returns its rows.
  size_t MaterializeView(const LevelVector& levels);
  bool HasView(const LevelVector& levels) const;

  // Builds a B-tree index keyed by `dim_order` (hierarchy dimension ids,
  // all active in the view) over the view's leveled codes.
  void BuildIndex(const LevelVector& levels,
                  const std::vector<int>& dim_order);

  const std::vector<LevelVector>& materialized_views() const {
    return order_;
  }

  double TotalSpaceRows() const;

  // Internal per-view record, exposed for the executor.
  struct LeveledView {
    LevelVector levels;
    std::vector<int> active_dims;  // hierarchy dim ids, ascending
    MaterializedView view;         // over LeveledSchema(...)
    struct Index {
      std::vector<int> dim_order;  // hierarchy dim ids in key order
      ViewIndex index;             // keyed by leveled-schema positions
    };
    std::vector<Index> indexes;
  };
  const LeveledView* Find(const LevelVector& levels) const;

 private:
  const FactTable* fact_;
  const HierarchyMaps* maps_;
  HierarchicalLattice lattice_;
  std::map<HViewId, std::unique_ptr<LeveledView>> views_;
  std::vector<LevelVector> order_;
};

struct HExecutionStats {
  uint64_t rows_processed = 0;
  bool used_raw = true;
  LevelVector view;              // meaningful when !used_raw
  std::vector<int> index_order;  // empty = plain scan
  double estimated_cost = 0.0;
};

// One result row: group-by values at the *query's* group levels.
struct HGroupedResult {
  std::vector<int> group_dims;              // hierarchy dim ids, ascending
  std::vector<std::vector<uint32_t>> keys;  // values at the query's levels
  std::vector<AggregateState> aggregates;

  size_t num_rows() const { return aggregates.size(); }
};

class HierarchicalExecutor {
 public:
  explicit HierarchicalExecutor(const HierarchicalCatalog* catalog);

  // `selection_values` is parallel to the query's select dimensions in
  // ascending dimension order, each value at that dimension's query level.
  HGroupedResult Execute(const HSliceQuery& query,
                         const std::vector<uint32_t>& selection_values,
                         HExecutionStats* stats = nullptr) const;

  // Reference implementation over the raw finest-level fact table.
  HGroupedResult ExecuteNaive(
      const HSliceQuery& query,
      const std::vector<uint32_t>& selection_values) const;

 private:
  const HierarchicalCatalog* catalog_;
};

}  // namespace olapidx

#endif  // OLAPIDX_HIERARCHY_HIERARCHICAL_EXECUTOR_H_
