// Dimension hierarchies: each dimension has a chain of levels from finest
// (index 0, e.g. day) to coarsest (e.g. quarter), topped by the implicit
// ALL level. This generalizes the flat cube of the paper's TPC-D example
// the same way [HRU96] generalizes its lattice: a view now picks one level
// per dimension, and the lattice is the product of the per-dimension
// chains.

#ifndef OLAPIDX_HIERARCHY_HIERARCHICAL_SCHEMA_H_
#define OLAPIDX_HIERARCHY_HIERARCHICAL_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"

namespace olapidx {

struct HierarchyLevel {
  std::string name;
  // Distinct members at this level; must not increase when coarsening.
  uint64_t cardinality = 0;
};

struct HierarchicalDimension {
  std::string name;
  // levels[0] is the finest. Must be non-empty; cardinalities must be
  // non-increasing along the chain.
  std::vector<HierarchyLevel> levels;
};

class HierarchicalSchema {
 public:
  explicit HierarchicalSchema(std::vector<HierarchicalDimension> dims);

  int num_dimensions() const {
    return static_cast<int>(dimensions_.size());
  }
  const HierarchicalDimension& dimension(int d) const {
    OLAPIDX_DCHECK(d >= 0 && d < num_dimensions());
    return dimensions_[static_cast<size_t>(d)];
  }
  // Number of proper levels of dimension d (excluding ALL).
  int num_levels(int d) const {
    return static_cast<int>(dimension(d).levels.size());
  }
  // The ALL pseudo-level index of dimension d.
  int all_level(int d) const { return num_levels(d); }

  // Cardinality of dimension d at `level` (ALL = 1).
  uint64_t cardinality(int d, int level) const {
    OLAPIDX_DCHECK(level >= 0 && level <= all_level(d));
    return level == all_level(d)
               ? 1
               : dimension(d).levels[static_cast<size_t>(level)].cardinality;
  }

  // "day", "month", ... or "ALL".
  const std::string& level_name(int d, int level) const;

  // Total number of level choices per dimension (levels + ALL), i.e. the
  // radix of dimension d in the view encoding.
  int radix(int d) const { return num_levels(d) + 1; }

  // Π radix(d): the number of views in the hierarchical lattice.
  uint64_t NumViews() const;

 private:
  std::vector<HierarchicalDimension> dimensions_;
};

}  // namespace olapidx

#endif  // OLAPIDX_HIERARCHY_HIERARCHICAL_SCHEMA_H_
