// Child-to-parent code mappings between adjacent hierarchy levels
// (store → city → region): the physical data needed to materialize a
// hierarchical view from a finest-level fact table. Real systems read
// these from the dimension tables; Balanced() generates deterministic
// synthetic ones for simulation.

#ifndef OLAPIDX_HIERARCHY_LEVEL_MAP_H_
#define OLAPIDX_HIERARCHY_LEVEL_MAP_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "hierarchy/hierarchical_schema.h"

namespace olapidx {

class DimensionLevelMap {
 public:
  // up[l][code] = the level-(l+1) parent of level-l member `code`;
  // up.size() must be num_levels - 1 and each table must cover the
  // child level's cardinality with parents within the parent level's.
  DimensionLevelMap(const HierarchicalDimension& dimension,
                    std::vector<std::vector<uint32_t>> up);

  // Maps a level-`from` code to its ancestor at level `to`
  // (from <= to <= num_levels; the ALL level maps everything to 0).
  uint32_t MapUp(int from_level, int to_level, uint32_t code) const;

  int num_levels() const { return static_cast<int>(up_.size()) + 1; }

  // A deterministic balanced *clustered* hierarchy: child c at level l has
  // parent floor(c · parents / children), so each parent's children form a
  // contiguous code range — the standard ROLAP key encoding (day codes
  // ordered by date ⇒ each month is a contiguous day range), which is what
  // lets a fine-keyed B-tree index serve coarser selections as range
  // scans.
  static DimensionLevelMap Balanced(const HierarchicalDimension& dimension);

  // True iff every adjacent map is monotone non-decreasing (clustered).
  bool IsClustered() const;

  // For a clustered map: the inclusive range of level-`from` codes whose
  // ancestor at level `to` equals `parent` (empty ranges return
  // {1, 0}-style lo > hi). `to` may be the ALL level (full range).
  std::pair<uint32_t, uint32_t> ChildRange(int from_level, int to_level,
                                           uint32_t parent,
                                           uint32_t from_cardinality) const;

 private:
  std::vector<std::vector<uint32_t>> up_;
};

class HierarchyMaps {
 public:
  HierarchyMaps(const HierarchicalSchema* schema,
                std::vector<DimensionLevelMap> dims);

  static HierarchyMaps Balanced(const HierarchicalSchema& schema);

  const HierarchicalSchema& schema() const { return *schema_; }
  const DimensionLevelMap& dimension(int d) const {
    return dims_[static_cast<size_t>(d)];
  }

 private:
  const HierarchicalSchema* schema_;
  std::vector<DimensionLevelMap> dims_;
};

}  // namespace olapidx

#endif  // OLAPIDX_HIERARCHY_LEVEL_MAP_H_
