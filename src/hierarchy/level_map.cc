#include "hierarchy/level_map.h"

namespace olapidx {

DimensionLevelMap::DimensionLevelMap(
    const HierarchicalDimension& dimension,
    std::vector<std::vector<uint32_t>> up)
    : up_(std::move(up)) {
  OLAPIDX_CHECK(up_.size() + 1 == dimension.levels.size());
  for (size_t l = 0; l < up_.size(); ++l) {
    OLAPIDX_CHECK(up_[l].size() == dimension.levels[l].cardinality);
    for (uint32_t parent : up_[l]) {
      OLAPIDX_CHECK(parent < dimension.levels[l + 1].cardinality);
    }
  }
}

uint32_t DimensionLevelMap::MapUp(int from_level, int to_level,
                                  uint32_t code) const {
  OLAPIDX_CHECK(from_level >= 0);
  OLAPIDX_CHECK(from_level <= to_level);
  // Anything at or beyond the ALL pseudo-level collapses to 0.
  if (to_level > num_levels() - 1) return 0;
  for (int l = from_level; l < to_level; ++l) {
    code = up_[static_cast<size_t>(l)][code];
  }
  return code;
}

DimensionLevelMap DimensionLevelMap::Balanced(
    const HierarchicalDimension& dimension) {
  std::vector<std::vector<uint32_t>> up;
  for (size_t l = 0; l + 1 < dimension.levels.size(); ++l) {
    uint64_t child_card = dimension.levels[l].cardinality;
    uint64_t parent_card = dimension.levels[l + 1].cardinality;
    std::vector<uint32_t> table(child_card);
    for (uint32_t c = 0; c < table.size(); ++c) {
      table[c] =
          static_cast<uint32_t>(static_cast<uint64_t>(c) * parent_card /
                                child_card);
    }
    up.push_back(std::move(table));
  }
  return DimensionLevelMap(dimension, std::move(up));
}

bool DimensionLevelMap::IsClustered() const {
  for (const std::vector<uint32_t>& table : up_) {
    for (size_t c = 1; c < table.size(); ++c) {
      if (table[c] < table[c - 1]) return false;
    }
  }
  return true;
}

std::pair<uint32_t, uint32_t> DimensionLevelMap::ChildRange(
    int from_level, int to_level, uint32_t parent,
    uint32_t from_cardinality) const {
  OLAPIDX_CHECK(from_level <= to_level);
  if (to_level > num_levels() - 1) {
    return {0, from_cardinality - 1};  // ALL: everything matches
  }
  // MapUp(from, to, ·) is monotone for clustered maps; binary search the
  // boundaries.
  OLAPIDX_DCHECK(IsClustered());
  uint32_t lo = from_cardinality, hi = 0;
  // First code mapping to >= parent.
  uint32_t a = 0, b = from_cardinality;
  while (a < b) {
    uint32_t mid = a + (b - a) / 2;
    if (MapUp(from_level, to_level, mid) >= parent) {
      b = mid;
    } else {
      a = mid + 1;
    }
  }
  lo = a;
  // First code mapping to > parent.
  b = from_cardinality;
  while (a < b) {
    uint32_t mid = a + (b - a) / 2;
    if (MapUp(from_level, to_level, mid) > parent) {
      b = mid;
    } else {
      a = mid + 1;
    }
  }
  hi = a;  // one past the last match
  if (lo >= hi) return {1, 0};  // empty
  return {lo, hi - 1};
}

HierarchyMaps::HierarchyMaps(const HierarchicalSchema* schema,
                             std::vector<DimensionLevelMap> dims)
    : schema_(schema), dims_(std::move(dims)) {
  OLAPIDX_CHECK(schema != nullptr);
  OLAPIDX_CHECK(static_cast<int>(dims_.size()) == schema->num_dimensions());
}

HierarchyMaps HierarchyMaps::Balanced(const HierarchicalSchema& schema) {
  std::vector<DimensionLevelMap> dims;
  for (int d = 0; d < schema.num_dimensions(); ++d) {
    dims.push_back(DimensionLevelMap::Balanced(schema.dimension(d)));
  }
  return HierarchyMaps(&schema, std::move(dims));
}

}  // namespace olapidx
