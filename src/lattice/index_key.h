// IndexKey: the search key of a B-tree index — an *ordered* sequence of
// distinct attributes. Order matters (Section 3.3 of the paper): the index
// I_{X1..Xk}(V) helps a slice query exactly on the longest prefix of
// X1..Xk consisting only of the query's selection attributes.

#ifndef OLAPIDX_LATTICE_INDEX_KEY_H_
#define OLAPIDX_LATTICE_INDEX_KEY_H_

#include <string>
#include <vector>

#include "lattice/attribute_set.h"

namespace olapidx {

class IndexKey {
 public:
  // The empty key, denoting "no index" (D = empty sequence in the paper).
  IndexKey() = default;

  // `attrs` must be distinct attribute ids in search-key order.
  explicit IndexKey(std::vector<int> attrs);

  const std::vector<int>& attrs() const { return attrs_; }
  bool empty() const { return attrs_.empty(); }
  int size() const { return static_cast<int>(attrs_.size()); }

  // The (unordered) set of key attributes.
  AttributeSet AsSet() const;

  // The longest prefix of this key composed only of attributes in
  // `selection` — the set E in the paper's cost formula c(Q,V,J) = |C|/|E|.
  AttributeSet LongestSelectionPrefix(AttributeSet selection) const;

  // True iff `other`'s attribute sequence is a proper prefix of this key's.
  // Under the paper's index-size model such an `other` is dominated by this
  // key (Section 4.2.2), which is what justifies fat-index pruning.
  bool HasProperPrefix(const IndexKey& other) const;

  // "I_sp" style rendering given per-attribute names.
  std::string ToString(const std::vector<std::string>& names) const;

  friend bool operator==(const IndexKey& a, const IndexKey& b) {
    return a.attrs_ == b.attrs_;
  }
  friend bool operator<(const IndexKey& a, const IndexKey& b) {
    return a.attrs_ < b.attrs_;
  }

 private:
  std::vector<int> attrs_;
};

}  // namespace olapidx

#endif  // OLAPIDX_LATTICE_INDEX_KEY_H_
