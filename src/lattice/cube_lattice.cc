#include "lattice/cube_lattice.h"

#include <algorithm>

namespace olapidx {

namespace {

// Appends every ordered arrangement of exactly `r` elements of `attrs`.
void AppendArrangements(const std::vector<int>& attrs, int r,
                        std::vector<IndexKey>& out) {
  std::vector<bool> used(attrs.size(), false);
  std::vector<int> choice;
  choice.reserve(static_cast<size_t>(r));
  // Depth-first enumeration of r-arrangements.
  auto rec = [&](auto&& self, int depth) -> void {
    if (depth == r) {
      out.emplace_back(choice);
      return;
    }
    for (size_t i = 0; i < attrs.size(); ++i) {
      if (used[i]) continue;
      used[i] = true;
      choice.push_back(attrs[i]);
      self(self, depth + 1);
      choice.pop_back();
      used[i] = false;
    }
  };
  rec(rec, 0);
}

}  // namespace

CubeLattice::CubeLattice(const CubeSchema& schema)
    : n_(schema.num_dimensions()) {
  OLAPIDX_CHECK(n_ >= 1 && n_ <= kMaxDimensions);
}

std::vector<ViewId> CubeLattice::ImmediateChildren(ViewId v) const {
  std::vector<ViewId> out;
  AttributeSet attrs = AttrsOf(v);
  for (int a : attrs.ToVector()) out.push_back(ViewOf(attrs.Without(a)));
  return out;
}

std::vector<ViewId> CubeLattice::ImmediateParents(ViewId v) const {
  std::vector<ViewId> out;
  AttributeSet attrs = AttrsOf(v);
  for (int a = 0; a < n_; ++a) {
    if (!attrs.Contains(a)) out.push_back(ViewOf(attrs.With(a)));
  }
  return out;
}

std::vector<IndexKey> CubeLattice::FatIndexes(ViewId v) const {
  AttributeSet attrs = AttrsOf(v);
  OLAPIDX_CHECK(attrs.size() <= 8);
  std::vector<int> perm = attrs.ToVector();
  std::vector<IndexKey> out;
  if (perm.empty()) return out;
  out.reserve(static_cast<size_t>(NumFatIndexes(attrs.size())));
  std::sort(perm.begin(), perm.end());
  do {
    out.emplace_back(perm);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return out;
}

std::vector<IndexKey> CubeLattice::AllIndexes(ViewId v) const {
  AttributeSet attrs = AttrsOf(v);
  OLAPIDX_CHECK(attrs.size() <= 6);
  std::vector<int> elems = attrs.ToVector();
  std::vector<IndexKey> out;
  for (int r = 1; r <= static_cast<int>(elems.size()); ++r) {
    AppendArrangements(elems, r, out);
  }
  return out;
}

uint64_t CubeLattice::NumFatIndexes(int m) {
  OLAPIDX_CHECK(m >= 0 && m <= 20);
  uint64_t f = 1;
  for (int i = 2; i <= m; ++i) f *= static_cast<uint64_t>(i);
  return m == 0 ? 0 : f;
}

uint64_t CubeLattice::NumAllIndexes(int m) {
  // sum_{r=1..m} m!/(m-r)!  (falling factorials).
  uint64_t total = 0;
  for (int r = 1; r <= m; ++r) {
    uint64_t arr = 1;
    for (int i = 0; i < r; ++i) arr *= static_cast<uint64_t>(m - i);
    total += arr;
  }
  return total;
}

uint64_t CubeLattice::TotalFatStructures(int n) {
  OLAPIDX_CHECK(n >= 0 && n <= 12);
  // sum over view sizes k of C(n,k) * (1 view + k! fat indexes).
  uint64_t total = 0;
  for (int k = 0; k <= n; ++k) {
    uint64_t choose = 1;
    for (int i = 0; i < k; ++i) {
      choose = choose * static_cast<uint64_t>(n - i) /
               static_cast<uint64_t>(i + 1);
    }
    total += choose * (1 + NumFatIndexes(k));
  }
  return total;
}

}  // namespace olapidx
