#include "lattice/index_key.h"

namespace olapidx {

IndexKey::IndexKey(std::vector<int> attrs) : attrs_(std::move(attrs)) {
  AttributeSet seen;
  for (int a : attrs_) {
    OLAPIDX_CHECK(a >= 0 && a < kMaxDimensions);
    OLAPIDX_CHECK(!seen.Contains(a));  // Key attributes must be distinct.
    seen = seen.With(a);
  }
}

AttributeSet IndexKey::AsSet() const {
  AttributeSet s;
  for (int a : attrs_) s = s.With(a);
  return s;
}

AttributeSet IndexKey::LongestSelectionPrefix(AttributeSet selection) const {
  AttributeSet prefix;
  for (int a : attrs_) {
    if (!selection.Contains(a)) break;
    prefix = prefix.With(a);
  }
  return prefix;
}

bool IndexKey::HasProperPrefix(const IndexKey& other) const {
  if (other.attrs_.size() >= attrs_.size()) return false;
  for (size_t i = 0; i < other.attrs_.size(); ++i) {
    if (other.attrs_[i] != attrs_[i]) return false;
  }
  return true;
}

std::string IndexKey::ToString(const std::vector<std::string>& names) const {
  std::string out = "I_";
  if (attrs_.empty()) return out + "none";
  for (int a : attrs_) {
    OLAPIDX_CHECK(a < static_cast<int>(names.size()));
    out += names[static_cast<size_t>(a)];
  }
  return out;
}

}  // namespace olapidx
