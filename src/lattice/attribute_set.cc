#include "lattice/attribute_set.h"

namespace olapidx {

std::string AttributeSet::ToString(
    const std::vector<std::string>& names) const {
  if (empty()) return "none";
  bool all_single = true;
  for (int a : ToVector()) {
    OLAPIDX_CHECK(a < static_cast<int>(names.size()));
    if (names[static_cast<size_t>(a)].size() != 1) all_single = false;
  }
  std::string out;
  bool first = true;
  for (int a : ToVector()) {
    if (!all_single && !first) out += ',';
    out += names[static_cast<size_t>(a)];
    first = false;
  }
  return out;
}

}  // namespace olapidx
