// CubeLattice: the lattice of the 2^n subcubes of an n-dimensional data cube
// under the dependence relation (Section 3.4), plus enumeration of the fat
// indexes (attribute permutations) of each view (Sections 3.3, 4.2.2).

#ifndef OLAPIDX_LATTICE_CUBE_LATTICE_H_
#define OLAPIDX_LATTICE_CUBE_LATTICE_H_

#include <cstdint>
#include <vector>

#include "lattice/attribute_set.h"
#include "lattice/index_key.h"
#include "lattice/schema.h"

namespace olapidx {

// A view (subcube) is identified by the bitmask of its group-by attributes;
// ids are therefore dense in [0, 2^n).
using ViewId = uint32_t;

class CubeLattice {
 public:
  explicit CubeLattice(const CubeSchema& schema);

  int num_dimensions() const { return n_; }
  uint32_t num_views() const { return 1u << n_; }

  ViewId ViewOf(AttributeSet attrs) const {
    OLAPIDX_DCHECK(attrs.IsSubsetOf(AttributeSet::Full(n_)));
    return attrs.mask();
  }
  AttributeSet AttrsOf(ViewId v) const {
    OLAPIDX_DCHECK(v < num_views());
    return AttributeSet::FromMask(v);
  }

  // The base view that groups by every dimension (the lattice's largest
  // element; for the raw TPC-D cube this is `psc`).
  ViewId BaseView() const { return num_views() - 1; }

  // Dependence relation: true iff `v1` can be computed from `v2`
  // (attrs(v1) ⊆ attrs(v2)). In the paper's notation, v1 ⪯ v2.
  bool DependsOn(ViewId v1, ViewId v2) const {
    return AttrsOf(v1).IsSubsetOf(AttrsOf(v2));
  }

  // Views whose attribute set is attrs(v) minus exactly one attribute.
  std::vector<ViewId> ImmediateChildren(ViewId v) const;
  // Views whose attribute set is attrs(v) plus exactly one attribute.
  std::vector<ViewId> ImmediateParents(ViewId v) const;

  // All fat indexes of `v`: one per permutation of attrs(v), in
  // lexicographic permutation order. Empty for the apex view.
  // Requires |attrs(v)| <= 8 (8! = 40320 permutations).
  std::vector<IndexKey> FatIndexes(ViewId v) const;

  // All indexes of `v`: one per non-empty ordered subset of attrs(v).
  // Used only by the fat-index-pruning ablation; requires |attrs(v)| <= 6.
  std::vector<IndexKey> AllIndexes(ViewId v) const;

  // Number of fat indexes of a view with m attributes (m!).
  static uint64_t NumFatIndexes(int m);
  // Number of all ordered-subset indexes of a view with m attributes
  // (sum over r>=1 of C(m,r)·r!).
  static uint64_t NumAllIndexes(int m);
  // Total structures (views + fat indexes) in an n-dimensional cube;
  // the "m" of the paper's running-time bounds.
  static uint64_t TotalFatStructures(int n);

 private:
  int n_;
};

}  // namespace olapidx

#endif  // OLAPIDX_LATTICE_CUBE_LATTICE_H_
