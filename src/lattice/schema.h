// CubeSchema: the dimensions of a data cube (names + member cardinalities).

#ifndef OLAPIDX_LATTICE_SCHEMA_H_
#define OLAPIDX_LATTICE_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "lattice/attribute_set.h"

namespace olapidx {

struct Dimension {
  std::string name;
  // Number of distinct members of the dimension (excluding "ALL").
  uint64_t cardinality = 0;
};

class CubeSchema {
 public:
  explicit CubeSchema(std::vector<Dimension> dimensions);

  int num_dimensions() const { return static_cast<int>(dimensions_.size()); }
  const Dimension& dimension(int i) const {
    OLAPIDX_DCHECK(i >= 0 && i < num_dimensions());
    return dimensions_[static_cast<size_t>(i)];
  }
  const std::vector<Dimension>& dimensions() const { return dimensions_; }

  // Per-dimension names, in attribute-id order.
  const std::vector<std::string>& names() const { return names_; }

  // Product of the cardinalities of the attributes in `attrs`
  // (1 for the empty set). Saturates instead of overflowing.
  double DomainSize(AttributeSet attrs) const;

  AttributeSet AllAttributes() const {
    return AttributeSet::Full(num_dimensions());
  }

 private:
  std::vector<Dimension> dimensions_;
  std::vector<std::string> names_;
};

}  // namespace olapidx

#endif  // OLAPIDX_LATTICE_SCHEMA_H_
