// AttributeSet: a set of cube dimensions, represented as a bitmask.
//
// The paper denotes views (subcubes) by their group-by attribute sets and
// queries by a (group-by set, selection set) pair; this type is the common
// currency for all of them. Attribute ids are dense indexes 0..n-1 into a
// CubeSchema.

#ifndef OLAPIDX_LATTICE_ATTRIBUTE_SET_H_
#define OLAPIDX_LATTICE_ATTRIBUTE_SET_H_

#include <bit>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/check.h"

namespace olapidx {

// Maximum number of cube dimensions supported by the bitmask representation.
inline constexpr int kMaxDimensions = 20;

class AttributeSet {
 public:
  // The empty set (the apex view "none" in the paper, which has one row).
  constexpr AttributeSet() : mask_(0) {}

  // Constructs directly from a bitmask (bit i set <=> attribute i present).
  static constexpr AttributeSet FromMask(uint32_t mask) {
    return AttributeSet(mask);
  }

  // Constructs from a list of attribute ids, e.g. AttributeSet::Of({0, 2}).
  static AttributeSet Of(std::initializer_list<int> attrs) {
    uint32_t mask = 0;
    for (int a : attrs) {
      OLAPIDX_CHECK(a >= 0 && a < kMaxDimensions);
      mask |= (1u << a);
    }
    return AttributeSet(mask);
  }

  // The full set {0, ..., n-1}.
  static constexpr AttributeSet Full(int n) {
    return AttributeSet((n >= 32) ? ~0u : ((1u << n) - 1u));
  }

  constexpr uint32_t mask() const { return mask_; }
  constexpr bool empty() const { return mask_ == 0; }
  int size() const { return std::popcount(mask_); }

  bool Contains(int attr) const { return (mask_ & (1u << attr)) != 0; }
  constexpr bool IsSubsetOf(AttributeSet other) const {
    return (mask_ & ~other.mask_) == 0;
  }
  constexpr bool IsSupersetOf(AttributeSet other) const {
    return other.IsSubsetOf(*this);
  }
  constexpr bool Intersects(AttributeSet other) const {
    return (mask_ & other.mask_) != 0;
  }

  constexpr AttributeSet Union(AttributeSet other) const {
    return AttributeSet(mask_ | other.mask_);
  }
  constexpr AttributeSet Intersect(AttributeSet other) const {
    return AttributeSet(mask_ & other.mask_);
  }
  constexpr AttributeSet Minus(AttributeSet other) const {
    return AttributeSet(mask_ & ~other.mask_);
  }

  AttributeSet With(int attr) const {
    OLAPIDX_DCHECK(attr >= 0 && attr < kMaxDimensions);
    return AttributeSet(mask_ | (1u << attr));
  }
  AttributeSet Without(int attr) const {
    OLAPIDX_DCHECK(attr >= 0 && attr < kMaxDimensions);
    return AttributeSet(mask_ & ~(1u << attr));
  }

  // Attribute ids in ascending order.
  std::vector<int> ToVector() const {
    std::vector<int> out;
    out.reserve(static_cast<size_t>(size()));
    for (uint32_t m = mask_; m != 0; m &= m - 1) {
      out.push_back(std::countr_zero(m));
    }
    return out;
  }

  // Concatenated one-letter-per-attribute rendering using `names`
  // (e.g. "ps"); "none" for the empty set. Falls back to full names joined
  // by ',' when any name is longer than one character.
  std::string ToString(const std::vector<std::string>& names) const;

  friend constexpr bool operator==(AttributeSet a, AttributeSet b) {
    return a.mask_ == b.mask_;
  }
  friend constexpr bool operator!=(AttributeSet a, AttributeSet b) {
    return a.mask_ != b.mask_;
  }
  friend constexpr bool operator<(AttributeSet a, AttributeSet b) {
    return a.mask_ < b.mask_;
  }

 private:
  explicit constexpr AttributeSet(uint32_t mask) : mask_(mask) {}

  uint32_t mask_;
};

}  // namespace olapidx

#endif  // OLAPIDX_LATTICE_ATTRIBUTE_SET_H_
