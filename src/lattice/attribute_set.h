// AttributeSet: a set of cube dimensions, represented as a bitmask.
//
// The paper denotes views (subcubes) by their group-by attribute sets and
// queries by a (group-by set, selection set) pair; this type is the common
// currency for all of them. Attribute ids are dense indexes 0..n-1 into a
// CubeSchema.

#ifndef OLAPIDX_LATTICE_ATTRIBUTE_SET_H_
#define OLAPIDX_LATTICE_ATTRIBUTE_SET_H_

#include <bit>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/check.h"

namespace olapidx {

// Maximum number of cube dimensions supported by the bitmask representation.
inline constexpr int kMaxDimensions = 20;

class AttributeSet {
 public:
  // The empty set (the apex view "none" in the paper, which has one row).
  constexpr AttributeSet() : mask_(0) {}

  // Constructs directly from a bitmask (bit i set <=> attribute i present).
  static constexpr AttributeSet FromMask(uint32_t mask) {
    return AttributeSet(mask);
  }

  // Constructs from a list of attribute ids, e.g. AttributeSet::Of({0, 2}).
  static AttributeSet Of(std::initializer_list<int> attrs) {
    uint32_t mask = 0;
    for (int a : attrs) {
      OLAPIDX_CHECK(a >= 0 && a < kMaxDimensions);
      mask |= (1u << a);
    }
    return AttributeSet(mask);
  }

  // The full set {0, ..., n-1}.
  static constexpr AttributeSet Full(int n) {
    return AttributeSet((n >= 32) ? ~0u : ((1u << n) - 1u));
  }

  constexpr uint32_t mask() const { return mask_; }
  constexpr bool empty() const { return mask_ == 0; }
  int size() const { return std::popcount(mask_); }

  bool Contains(int attr) const { return (mask_ & (1u << attr)) != 0; }
  constexpr bool IsSubsetOf(AttributeSet other) const {
    return (mask_ & ~other.mask_) == 0;
  }
  constexpr bool IsSupersetOf(AttributeSet other) const {
    return other.IsSubsetOf(*this);
  }
  constexpr bool Intersects(AttributeSet other) const {
    return (mask_ & other.mask_) != 0;
  }

  constexpr AttributeSet Union(AttributeSet other) const {
    return AttributeSet(mask_ | other.mask_);
  }
  constexpr AttributeSet Intersect(AttributeSet other) const {
    return AttributeSet(mask_ & other.mask_);
  }
  constexpr AttributeSet Minus(AttributeSet other) const {
    return AttributeSet(mask_ & ~other.mask_);
  }

  AttributeSet With(int attr) const {
    OLAPIDX_DCHECK(attr >= 0 && attr < kMaxDimensions);
    return AttributeSet(mask_ | (1u << attr));
  }
  AttributeSet Without(int attr) const {
    OLAPIDX_DCHECK(attr >= 0 && attr < kMaxDimensions);
    return AttributeSet(mask_ & ~(1u << attr));
  }

  // Attribute ids in ascending order.
  std::vector<int> ToVector() const {
    std::vector<int> out;
    out.reserve(static_cast<size_t>(size()));
    for (uint32_t m = mask_; m != 0; m &= m - 1) {
      out.push_back(std::countr_zero(m));
    }
    return out;
  }

  // Concatenated one-letter-per-attribute rendering using `names`
  // (e.g. "ps"); "none" for the empty set. Falls back to full names joined
  // by ',' when any name is longer than one character.
  std::string ToString(const std::vector<std::string>& names) const;

  friend constexpr bool operator==(AttributeSet a, AttributeSet b) {
    return a.mask_ == b.mask_;
  }
  friend constexpr bool operator!=(AttributeSet a, AttributeSet b) {
    return a.mask_ != b.mask_;
  }
  friend constexpr bool operator<(AttributeSet a, AttributeSet b) {
    return a.mask_ < b.mask_;
  }

  // Range over every subset of this set (including the empty set and the
  // set itself), in ascending mask order. Defined after SubsetRange below.
  constexpr class SubsetRange Subsets() const;
  // Range over every superset of this set contained in `universe`, in
  // ascending mask order — exactly the lattice ViewId order, which is what
  // lets graph construction visit only the views that can answer a query.
  // Requires IsSubsetOf(universe).
  constexpr class SupersetRange SupersetsWithin(AttributeSet universe) const;

 private:
  explicit constexpr AttributeSet(uint32_t mask) : mask_(mask) {}

  uint32_t mask_;
};

// Ascending submask walk: from s, the next subset of m is (s - m) & m —
// subtracting m borrows through the cleared bits, so the result is the
// numerically next value whose bits all lie in m (wrapping to 0 past m).
class SubsetRange {
 public:
  class Iterator {
   public:
    constexpr Iterator(uint32_t cur, uint32_t mask, bool done)
        : cur_(cur), mask_(mask), done_(done) {}

    constexpr AttributeSet operator*() const {
      return AttributeSet::FromMask(cur_);
    }
    constexpr Iterator& operator++() {
      if (cur_ == mask_) {
        done_ = true;
        cur_ = 0;  // canonical past-the-end state, so == end() holds
      } else {
        cur_ = (cur_ - mask_) & mask_;
      }
      return *this;
    }
    friend constexpr bool operator!=(const Iterator& a, const Iterator& b) {
      return a.done_ != b.done_ || a.cur_ != b.cur_;
    }
    friend constexpr bool operator==(const Iterator& a, const Iterator& b) {
      return !(a != b);
    }

   private:
    uint32_t cur_;
    uint32_t mask_;
    bool done_;
  };

  explicit constexpr SubsetRange(AttributeSet set) : mask_(set.mask()) {}

  constexpr Iterator begin() const { return Iterator(0, mask_, false); }
  constexpr Iterator end() const { return Iterator(0, mask_, true); }

 private:
  uint32_t mask_;
};

// Supersets of `set` within `universe` are set ∪ x for x ⊆ universe \ set;
// since the free bits are disjoint from `set`, walking x ascending (the
// same submask trick) yields the supersets in ascending mask order.
class SupersetRange {
 public:
  class Iterator {
   public:
    constexpr Iterator(uint32_t extra, uint32_t base, uint32_t free,
                       bool done)
        : extra_(extra), base_(base), free_(free), done_(done) {}

    constexpr AttributeSet operator*() const {
      return AttributeSet::FromMask(base_ | extra_);
    }
    constexpr Iterator& operator++() {
      if (extra_ == free_) {
        done_ = true;
        extra_ = 0;  // canonical past-the-end state, so == end() holds
      } else {
        extra_ = (extra_ - free_) & free_;
      }
      return *this;
    }
    friend constexpr bool operator!=(const Iterator& a, const Iterator& b) {
      return a.done_ != b.done_ || a.extra_ != b.extra_;
    }
    friend constexpr bool operator==(const Iterator& a, const Iterator& b) {
      return !(a != b);
    }

   private:
    uint32_t extra_;
    uint32_t base_;
    uint32_t free_;
    bool done_;
  };

  constexpr SupersetRange(AttributeSet set, AttributeSet universe)
      : base_(set.mask()), free_(universe.Minus(set).mask()) {}

  constexpr Iterator begin() const {
    return Iterator(0, base_, free_, false);
  }
  constexpr Iterator end() const { return Iterator(0, base_, free_, true); }

 private:
  uint32_t base_;
  uint32_t free_;
};

constexpr SubsetRange AttributeSet::Subsets() const {
  return SubsetRange(*this);
}

constexpr SupersetRange AttributeSet::SupersetsWithin(
    AttributeSet universe) const {
  OLAPIDX_DCHECK(IsSubsetOf(universe));
  return SupersetRange(*this, universe);
}

}  // namespace olapidx

#endif  // OLAPIDX_LATTICE_ATTRIBUTE_SET_H_
