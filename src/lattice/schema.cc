#include "lattice/schema.h"

namespace olapidx {

CubeSchema::CubeSchema(std::vector<Dimension> dimensions)
    : dimensions_(std::move(dimensions)) {
  OLAPIDX_CHECK(!dimensions_.empty());
  OLAPIDX_CHECK(static_cast<int>(dimensions_.size()) <= kMaxDimensions);
  names_.reserve(dimensions_.size());
  for (const Dimension& d : dimensions_) {
    OLAPIDX_CHECK(d.cardinality > 0);
    OLAPIDX_CHECK(!d.name.empty());
    names_.push_back(d.name);
  }
}

double CubeSchema::DomainSize(AttributeSet attrs) const {
  double product = 1.0;
  for (int a : attrs.ToVector()) {
    OLAPIDX_CHECK(a < num_dimensions());
    product *= static_cast<double>(dimensions_[static_cast<size_t>(a)]
                                       .cardinality);
  }
  return product;
}

}  // namespace olapidx
